//! The Bias-Free Neural predictor (BF-Neural), §IV of the paper.
//!
//! [`BfNeural`] is the *practical implementation* of Algorithms 2 and 3:
//!
//! * a [`Classifier`] (Branch Status Table) detects non-biased branches
//!   on the fly; branches still classified as biased are predicted with
//!   their recorded direction and excluded from perceptron prediction,
//!   training, and (configurably) history;
//! * a small **conventional perceptron component** — the two-dimensional
//!   weight table `Wm` over the `ht` most recent *unfiltered* history
//!   bits — handles strongly-biased-but-detected-non-biased branches
//!   during training (§IV-B3);
//! * a **one-dimensional weight table** `Wrs` holds correlations with
//!   the non-biased branches tracked by the recency stack, indexed by a
//!   hash of (current PC, tracked branch address, its positional history,
//!   folded global history) — the §IV-B2 design that avoids re-learning
//!   when newly detected non-biased branches shift stack depths;
//! * an optional loop-count predictor covers constant-trip loops.
//!
//! The `history_mode` knob reproduces the paper's Figure 9 ablation:
//! unfiltered deep history → bias-filtered deep history → recency-stack
//! management.
//!
//! [`IdealBfNeural`] is the *idealized* Algorithm 1 formulation (a
//! two-dimensional weight table indexed by stack depth), kept for study
//! and tests.

use std::collections::VecDeque;

use bfbp_predictors::history::{mix64, BucketedFolds, GlobalHistory};
use bfbp_predictors::loop_pred::LoopPredictor;
use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::obs::{saturation_fraction, Metrics, PredictorIntrospect};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;

use crate::bst::{BranchStatus, Bst, Classifier, ProbabilisticBst};
use crate::recency::{RecencyStack, RsEntry};

const WB_CLAMP: i32 = 127; // 8-bit bias weights
const WM_CLAMP: i32 = 63; // 7-bit 2-D weights
const WRS_CLAMP: i32 = 15; // 5-bit 1-D weights

/// How the deep history component is managed (the Figure 9 ablation
/// axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryMode {
    /// Every conditional branch enters the deep history (biased branches
    /// included) — Figure 9's "BF-Neural (fhist)" bar.
    Unfiltered,
    /// Only non-biased branches enter, every occurrence — Figure 9's
    /// "ghist bias-free + fhist" bar (§III-A).
    BiasFiltered,
    /// Only non-biased branches, latest occurrence only, recency-stack
    /// managed — the full design (§III-B).
    RecencyStack,
}

/// Configuration of a [`BfNeural`] predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfNeuralConfig {
    /// log2 of BST entries.
    pub log_bst: u32,
    /// Use the probabilistic 3-bit BST instead of the plain 2-bit one.
    pub probabilistic_bst: bool,
    /// log2 of rows in the 2-D weight table `Wm`.
    pub log_wm_rows: u32,
    /// Number of recent unfiltered history bits (`ht`, the columns of
    /// `Wm`).
    pub recent_unfiltered: usize,
    /// log2 of entries in the 1-D weight table `Wrs`.
    pub log_wrs: u32,
    /// Deep-history entries tracked (`h - ht`; the RS depth).
    pub deep_depth: usize,
    /// Deep-history management mode.
    pub history_mode: HistoryMode,
    /// Augment weight indices with folded global history (§IV-A).
    pub folded_hist: bool,
    /// Include positional history in the `Wrs` index (§III-C).
    pub positional: bool,
    /// Attach the 64-entry loop-count predictor.
    pub loop_predictor: bool,
}

impl BfNeuralConfig {
    /// The paper's 64 KB configuration (§VI-B): BST 16384 entries, `Wm`
    /// 1024 × 16, `Wrs` 65536 entries, RS depth 48, loop predictor.
    pub fn budget_64kb() -> Self {
        Self {
            log_bst: 14,
            probabilistic_bst: false,
            log_wm_rows: 10,
            recent_unfiltered: 16,
            log_wrs: 16,
            deep_depth: 48,
            history_mode: HistoryMode::RecencyStack,
            folded_hist: true,
            positional: true,
            loop_predictor: true,
        }
    }

    /// The 32 KB configuration (§VI-B reports 2.73 MPKI).
    pub fn budget_32kb() -> Self {
        Self {
            log_bst: 13,
            log_wm_rows: 9,
            log_wrs: 15,
            deep_depth: 40,
            ..Self::budget_64kb()
        }
    }

    /// Figure 9 bar 2: BST gating + folded history, deep history left
    /// unfiltered.
    pub fn ablation_fhist() -> Self {
        Self {
            history_mode: HistoryMode::Unfiltered,
            ..Self::budget_64kb()
        }
    }

    /// Figure 9 bar 3: additionally, only non-biased branches enter the
    /// deep history.
    pub fn ablation_bias_free_ghist() -> Self {
        Self {
            history_mode: HistoryMode::BiasFiltered,
            ..Self::budget_64kb()
        }
    }

    /// Figure 9 bar 4 (the full design): recency-stack management on top.
    pub fn ablation_recency_stack() -> Self {
        Self::budget_64kb()
    }
}

impl Default for BfNeuralConfig {
    fn default() -> Self {
        Self::budget_64kb()
    }
}

/// Deep-history container for the three [`HistoryMode`]s.
#[derive(Debug, Clone)]
enum DeepHistory {
    Shift(VecDeque<RsEntry>, usize),
    Stack(RecencyStack),
}

impl DeepHistory {
    fn new(mode: HistoryMode, depth: usize) -> Self {
        match mode {
            HistoryMode::RecencyStack => DeepHistory::Stack(RecencyStack::new(depth)),
            _ => DeepHistory::Shift(VecDeque::with_capacity(depth + 1), depth),
        }
    }

    fn insert(&mut self, key: u64, outcome: bool, now: u64) {
        match self {
            DeepHistory::Shift(q, cap) => {
                q.push_front(RsEntry {
                    key,
                    outcome,
                    birth: now,
                });
                if q.len() > *cap {
                    q.pop_back();
                }
            }
            DeepHistory::Stack(rs) => {
                rs.record(key, outcome, now);
            }
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = &RsEntry> + '_> {
        match self {
            DeepHistory::Shift(q, _) => Box::new(q.iter()),
            DeepHistory::Stack(rs) => Box::new(rs.iter()),
        }
    }
}

impl Restorable for DeepHistory {
    fn save_state(&self, w: &mut StateWriter) {
        match self {
            DeepHistory::Shift(q, _) => {
                w.u8(0);
                w.usize(q.len());
                for e in q {
                    w.u64(e.key);
                    w.bool(e.outcome);
                    w.u64(e.birth);
                }
            }
            DeepHistory::Stack(rs) => {
                w.u8(1);
                rs.save_state(w);
            }
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, DeepHistory::Shift(q, cap)) => {
                let count = r.usize()?;
                if count > *cap {
                    return Err(CodecError::Malformed("deep history over capacity"));
                }
                q.clear();
                for _ in 0..count {
                    q.push_back(RsEntry {
                        key: r.u64()?,
                        outcome: r.bool()?,
                        birth: r.u64()?,
                    });
                }
                Ok(())
            }
            (1, DeepHistory::Stack(rs)) => rs.load_state(r),
            _ => Err(CodecError::Malformed("deep history mode mismatch")),
        }
    }
}

/// Per-prediction scratch carried into the update.
#[derive(Debug, Clone, Default)]
struct Scratch {
    sum: i32,
    used_perceptron: bool,
    wm_indices: Vec<usize>,
    wrs_terms: Vec<(usize, bool)>,
    /// Prediction before any loop-predictor override.
    base_pred: bool,
    final_pred: bool,
    /// Whether a confident loop prediction overrode `base_pred`.
    loop_used: bool,
}

/// The practical BF-Neural predictor (Algorithms 2 and 3).
#[derive(Debug, Clone)]
pub struct BfNeural {
    config: BfNeuralConfig,
    classifier: Classifier,
    wb: Vec<i8>,
    wm: Vec<i8>,
    wrs: Vec<i8>,
    unf_hist: GlobalHistory,
    unf_addrs: Vec<u64>,
    addr_head: usize,
    folds: BucketedFolds,
    deep: DeepHistory,
    now: u64,
    theta: i32,
    threshold_ctr: i32,
    loop_pred: Option<LoopPredictor>,
    scratch: Scratch,
    name: String,
}

impl BfNeural {
    /// Creates a predictor from a configuration, with the configured
    /// dynamic BST.
    ///
    /// # Panics
    ///
    /// Panics if `recent_unfiltered` or `deep_depth` is zero.
    pub fn new(config: BfNeuralConfig) -> Self {
        let classifier = if config.probabilistic_bst {
            Classifier::Probabilistic(ProbabilisticBst::new(config.log_bst, 256))
        } else {
            Classifier::TwoBit(Bst::new(config.log_bst))
        };
        Self::with_classifier(config, classifier)
    }

    /// Creates a predictor with an explicit classifier (used by the
    /// §VI-D static-profile experiments).
    ///
    /// # Panics
    ///
    /// Panics if `recent_unfiltered` or `deep_depth` is zero.
    pub fn with_classifier(config: BfNeuralConfig, classifier: Classifier) -> Self {
        assert!(config.recent_unfiltered > 0, "ht must be non-zero");
        assert!(config.deep_depth > 0, "deep depth must be non-zero");
        let wb_len = 1usize << 10;
        Self {
            config,
            classifier,
            wb: vec![0; wb_len],
            wm: vec![0; (1 << config.log_wm_rows) * config.recent_unfiltered],
            wrs: vec![0; 1 << config.log_wrs],
            unf_hist: GlobalHistory::new(config.recent_unfiltered),
            unf_addrs: vec![0; config.recent_unfiltered],
            addr_head: 0,
            folds: BucketedFolds::new(),
            deep: DeepHistory::new(config.history_mode, config.deep_depth),
            now: 0,
            theta: 40,
            threshold_ctr: 0,
            name: {
                let mode = match config.history_mode {
                    HistoryMode::Unfiltered => "fhist",
                    HistoryMode::BiasFiltered => "ghist-bf+fhist",
                    HistoryMode::RecencyStack => "ghist-bf+rs+fhist",
                };
                format!("bf-neural({mode})")
            },
            loop_pred: config.loop_predictor.then(LoopPredictor::paper_64_entry),
            scratch: Scratch::default(),
        }
    }

    /// The 64 KB configuration.
    pub fn budget_64kb() -> Self {
        Self::new(BfNeuralConfig::budget_64kb())
    }

    /// The configuration in use.
    pub fn config(&self) -> &BfNeuralConfig {
        &self.config
    }

    /// Current adaptive training threshold.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    fn key_of(pc: u64) -> u64 {
        mix64(pc >> 2) & 0x3FFF
    }

    fn unf_addr(&self, age: usize) -> u64 {
        let h = self.unf_addrs.len();
        self.unf_addrs[(self.addr_head + h - 1 - age) % h]
    }

    fn wm_index(&self, pc: u64, age: usize) -> usize {
        let mut key = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (self.unf_addr(age) >> 2).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ (age as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
        if self.config.folded_hist {
            key ^= self.folds.fold_for(age + 1) << 20;
        }
        let row = (mix64(key) & ((1 << self.config.log_wm_rows) - 1)) as usize;
        row * self.config.recent_unfiltered + age
    }

    /// Quantizes a positional distance with geometrically coarsening
    /// granularity: exact below 64, then 8-branch buckets to 256,
    /// 32-branch buckets to 1024, 128-branch buckets beyond. Close
    /// correlations (loop iterations, Figure 4) keep full positional
    /// resolution while distant ones tolerate the few-branch length
    /// jitter of data-dependent loops — the same engineering trade-off
    /// geometric history lengths make.
    fn quantize_pos(pos: u64) -> u64 {
        match pos {
            0..=63 => pos,
            64..=255 => pos & !7,
            256..=1023 => pos & !31,
            _ => pos & !127,
        }
    }

    fn wrs_index(&self, pc: u64, entry: &RsEntry) -> usize {
        let mut key = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ entry.key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        if self.config.positional {
            key ^= Self::quantize_pos(entry.position(self.now)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        }
        if self.config.folded_hist {
            // Fold the recent path leading up to the current branch
            // (§IV-A), capped at 16 bits: enough to separate paths while
            // keeping the index stable against unrelated distant noise.
            let window = (entry.position(self.now) as usize).min(16);
            key ^= self.folds.fold_for(window) << 20;
        }
        (mix64(key) & ((1 << self.config.log_wrs) - 1)) as usize
    }

    /// Computes the perceptron sum for `pc`, filling the caller-provided
    /// index buffers (cleared first). Writing into reused buffers — and
    /// matching on the deep-history variant instead of boxing an
    /// iterator — keeps the per-prediction path allocation-free.
    fn compute(
        &self,
        pc: u64,
        wm_indices: &mut Vec<usize>,
        wrs_terms: &mut Vec<(usize, bool)>,
    ) -> i32 {
        wm_indices.clear();
        wrs_terms.clear();
        let mut sum = i32::from(self.wb[((pc >> 2) & 0x3FF) as usize]);
        let ht = self.config.recent_unfiltered;
        for age in 0..ht {
            let idx = self.wm_index(pc, age);
            wm_indices.push(idx);
            let w = i32::from(self.wm[idx]);
            sum += if self.unf_hist.bit(age) { w } else { -w };
        }
        let add = |entry: &RsEntry, sum: &mut i32, terms: &mut Vec<(usize, bool)>| {
            let idx = self.wrs_index(pc, entry);
            let w = i32::from(self.wrs[idx]);
            // Wrs weights are narrow (5-bit); scale them up so a strong
            // deep correlation can outvote the recent component.
            *sum += if entry.outcome { w } else { -w } * 3;
            terms.push((idx, entry.outcome));
        };
        match &self.deep {
            DeepHistory::Shift(q, _) => {
                for entry in q.iter().take(self.config.deep_depth) {
                    add(entry, &mut sum, wrs_terms);
                }
            }
            DeepHistory::Stack(rs) => {
                for entry in rs.iter().take(self.config.deep_depth) {
                    add(entry, &mut sum, wrs_terms);
                }
            }
        }
        sum
    }

    fn train_weights(
        &mut self,
        pc: u64,
        taken: bool,
        wm_indices: &[usize],
        wrs_terms: &[(usize, bool)],
    ) {
        let dir = if taken { 1 } else { -1 };
        let bidx = ((pc >> 2) & 0x3FF) as usize;
        self.wb[bidx] = (i32::from(self.wb[bidx]) + dir).clamp(-WB_CLAMP, WB_CLAMP) as i8;
        for (age, &idx) in wm_indices.iter().enumerate() {
            let x = if self.unf_hist.bit(age) { 1 } else { -1 };
            self.wm[idx] = (i32::from(self.wm[idx]) + dir * x).clamp(-WM_CLAMP, WM_CLAMP) as i8;
        }
        for &(idx, outcome) in wrs_terms {
            let x = if outcome { 1 } else { -1 };
            self.wrs[idx] = (i32::from(self.wrs[idx]) + dir * x).clamp(-WRS_CLAMP, WRS_CLAMP) as i8;
        }
    }

    fn adapt_threshold(&mut self, mispredicted: bool, below: bool) {
        if mispredicted {
            self.threshold_ctr += 1;
            if self.threshold_ctr >= 32 {
                self.theta += 1;
                self.threshold_ctr = 0;
            }
        } else if below {
            self.threshold_ctr -= 1;
            if self.threshold_ctr <= -32 {
                self.theta = (self.theta - 1).max(6);
                self.threshold_ctr = 0;
            }
        }
    }
}

impl ConditionalPredictor for BfNeural {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        let status = self.classifier.status(pc);
        // Take the scratch buffers out (a pointer move, not an
        // allocation), refill them, and put them back — their capacity is
        // recycled across the whole run.
        let mut wm_indices = std::mem::take(&mut self.scratch.wm_indices);
        let mut wrs_terms = std::mem::take(&mut self.scratch.wrs_terms);
        wm_indices.clear();
        wrs_terms.clear();
        let mut sum = 0;
        let mut used_perceptron = false;
        let pred = match status {
            BranchStatus::NotFound | BranchStatus::NotTaken => false,
            BranchStatus::Taken => true,
            BranchStatus::NonBiased => {
                sum = self.compute(pc, &mut wm_indices, &mut wrs_terms);
                used_perceptron = true;
                sum >= 0
            }
        };
        // The loop predictor overrides when confident (§IV-B2: "The loop
        // count (LC) predictor is used to predict these loops").
        let (final_pred, loop_used) = match self.loop_pred.as_ref().and_then(|lp| lp.predict(pc)) {
            Some(lp) if lp.confident => (lp.taken, true),
            _ => (pred, false),
        };
        self.scratch = Scratch {
            sum,
            used_perceptron,
            wm_indices,
            wrs_terms,
            base_pred: pred,
            final_pred,
            loop_used,
        };
        final_pred
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        let sum = self.scratch.sum;
        let used_perceptron = self.scratch.used_perceptron;
        let final_pred = self.scratch.final_pred;
        let mut wm_indices = std::mem::take(&mut self.scratch.wm_indices);
        let mut wrs_terms = std::mem::take(&mut self.scratch.wrs_terms);
        let status_before = self.classifier.status(pc);
        let status_after = self.classifier.commit(pc, taken);
        let final_mispredict = final_pred != taken;

        match status_before {
            BranchStatus::NotFound => {}
            BranchStatus::Taken | BranchStatus::NotTaken => {
                // Algorithm 3: a biased branch breaking its bias
                // transitions to NonBiased and trains the weights.
                if status_after == BranchStatus::NonBiased {
                    self.compute(pc, &mut wm_indices, &mut wrs_terms);
                    self.train_weights(pc, taken, &wm_indices, &wrs_terms);
                }
            }
            BranchStatus::NonBiased => {
                if used_perceptron {
                    let perceptron_mispredict = (sum >= 0) != taken;
                    let below = sum.abs() <= self.theta;
                    if perceptron_mispredict || below {
                        self.train_weights(pc, taken, &wm_indices, &wrs_terms);
                    }
                    self.adapt_threshold(perceptron_mispredict, below);
                }
            }
        }
        // Return the buffers for the next prediction.
        self.scratch.wm_indices = wm_indices;
        self.scratch.wrs_terms = wrs_terms;

        // Deep-history insertion per mode (Algorithm 3: "if BST ==
        // Non_biased then Update RS").
        let key = Self::key_of(pc);
        match self.config.history_mode {
            HistoryMode::Unfiltered => self.deep.insert(key, taken, self.now),
            HistoryMode::BiasFiltered | HistoryMode::RecencyStack => {
                if status_after == BranchStatus::NonBiased {
                    self.deep.insert(key, taken, self.now);
                }
            }
        }

        // Unfiltered recent component (Algorithm 3: "Update
        // GHR_unfiltered").
        self.unf_hist.push(taken);
        self.folds.push(taken);
        self.unf_addrs[self.addr_head] = pc;
        self.addr_head = (self.addr_head + 1) % self.unf_addrs.len();
        self.now += 1;

        if let Some(lp) = self.loop_pred.as_mut() {
            lp.update(pc, taken, final_mispredict);
        }
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        s.push(
            format!("BST ({} entries)", 1u64 << self.config.log_bst),
            self.classifier.storage_bits(),
        );
        s.push(
            format!(
                "Wm 2-D weights ({} rows x {} cols, 7b)",
                1u64 << self.config.log_wm_rows,
                self.config.recent_unfiltered
            ),
            self.wm.len() as u64 * 7,
        );
        s.push(
            format!("Wrs 1-D weights ({} entries, 5b)", self.wrs.len()),
            self.wrs.len() as u64 * 5,
        );
        s.push(
            "Wb bias weights (1024 entries, 8b)",
            self.wb.len() as u64 * 8,
        );
        s.push(
            format!("recency stack ({} entries)", self.config.deep_depth),
            self.config.deep_depth as u64 * 16,
        );
        s.push(
            "recent unfiltered history + addresses",
            (self.config.recent_unfiltered * 15) as u64,
        );
        if let Some(lp) = &self.loop_pred {
            s.push_nested("loop", &lp.storage());
        }
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        if self.scratch.loop_used {
            return Some(Provenance {
                component: "loop",
                prediction: self.scratch.final_pred,
                alternate: Some(self.scratch.base_pred),
                ..Default::default()
            });
        }
        if self.scratch.used_perceptron {
            return Some(Provenance {
                component: "perceptron",
                prediction: self.scratch.final_pred,
                margin: Some(i64::from(self.scratch.sum)),
                history_len: Some((self.config.recent_unfiltered + self.config.deep_depth) as u32),
                ..Default::default()
            });
        }
        // Branch still classified as biased: the BST supplied its
        // recorded direction.
        Some(Provenance::of("bst", self.scratch.final_pred))
    }

    fn introspection(&self) -> Option<&dyn PredictorIntrospect> {
        Some(self)
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for BfNeural {
    fn save_state(&self, w: &mut StateWriter) {
        // `scratch` is per-prediction state fully rewritten by the next
        // `predict` before `update` reads it, so it is not serialized.
        // The loop predictor's presence is fixed by the configuration.
        self.classifier.save_state(w);
        w.i8_slice(&self.wb);
        w.i8_slice(&self.wm);
        w.i8_slice(&self.wrs);
        self.unf_hist.save_state(w);
        w.u64_slice(&self.unf_addrs);
        w.usize(self.addr_head);
        self.folds.save_state(w);
        self.deep.save_state(w);
        w.u64(self.now);
        w.i32(self.theta);
        w.i32(self.threshold_ctr);
        if let Some(lp) = &self.loop_pred {
            lp.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.classifier.load_state(r)?;
        r.i8_into(&mut self.wb)?;
        r.i8_into(&mut self.wm)?;
        r.i8_into(&mut self.wrs)?;
        self.unf_hist.load_state(r)?;
        let unf_addrs = r.u64_vec()?;
        if unf_addrs.len() != self.unf_addrs.len() {
            return Err(CodecError::Malformed("address ring size mismatch"));
        }
        let addr_head = r.usize()?;
        if addr_head >= unf_addrs.len() {
            return Err(CodecError::Malformed("address head out of range"));
        }
        self.unf_addrs = unf_addrs;
        self.addr_head = addr_head;
        self.folds.load_state(r)?;
        self.deep.load_state(r)?;
        self.now = r.u64()?;
        self.theta = r.i32()?;
        self.threshold_ctr = r.i32()?;
        if let Some(lp) = self.loop_pred.as_mut() {
            lp.load_state(r)?;
        }
        Ok(())
    }
}

impl PredictorIntrospect for BfNeural {
    fn introspect(&self, metrics: &mut Metrics) {
        self.classifier.introspect_into(metrics);
        metrics.gauge("theta", f64::from(self.theta));
        metrics.gauge(
            "weights.bias.saturation",
            saturation_fraction(&self.wb, WB_CLAMP),
        );
        metrics.gauge(
            "weights.wm.saturation",
            saturation_fraction(&self.wm, WM_CLAMP),
        );
        metrics.gauge(
            "weights.wrs.saturation",
            saturation_fraction(&self.wrs, WRS_CLAMP),
        );
        // Depth distribution of the deep-history entries: how far back the
        // tracked non-biased branches sit in raw-history terms.
        const DEPTH_BOUNDS: &[f64] = &[8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0];
        let mut live = 0u64;
        for entry in self.deep.iter().take(self.config.deep_depth) {
            live += 1;
            metrics.observe(
                "recency.depth",
                DEPTH_BOUNDS,
                entry.position(self.now) as f64,
            );
        }
        metrics.gauge("recency.fill", live as f64 / self.config.deep_depth as f64);
    }
}

/// The idealized BF-Neural of Algorithm 1: a two-dimensional weight
/// table whose columns are recency-stack depths, with oracle-style bias
/// classification supplied by any [`Classifier`].
///
/// Kept faithful to the paper's conceptual design: useful for studying
/// the re-learning perturbation that motivates the practical
/// one-dimensional `Wrs` (§IV-B1/2).
#[derive(Debug, Clone)]
pub struct IdealBfNeural {
    classifier: Classifier,
    wb: Vec<i8>,
    wm: Vec<i8>, // rows x depth columns
    rows_log: u32,
    depth: usize,
    stack: RecencyStack,
    now: u64,
    theta: i32,
    scratch_sum: i32,
    scratch_indices: Vec<usize>,
    scratch_used: bool,
    scratch_pred: bool,
}

impl IdealBfNeural {
    /// Creates an idealized predictor with `2^rows_log` rows, `depth`
    /// recency-stack columns, and the given classifier.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(rows_log: u32, depth: usize, classifier: Classifier) -> Self {
        assert!(depth > 0, "depth must be non-zero");
        Self {
            classifier,
            wb: vec![0; 1 << 10],
            wm: vec![0; (1usize << rows_log) * depth],
            rows_log,
            depth,
            stack: RecencyStack::new(depth),
            now: 0,
            theta: (1.93 * depth as f64 + 14.0) as i32,
            scratch_sum: 0,
            scratch_indices: Vec::new(),
            scratch_used: false,
            scratch_pred: false,
        }
    }

    fn row_index(&self, pc: u64, entry: &RsEntry) -> usize {
        let key = (pc >> 2)
            ^ entry.key.wrapping_mul(0x9E37_79B9)
            ^ entry.position(self.now).wrapping_mul(0xC2B2_AE3D);
        (mix64(key) & ((1 << self.rows_log) - 1)) as usize
    }
}

impl ConditionalPredictor for IdealBfNeural {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed("bf-neural-ideal")
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.scratch_pred = match self.classifier.status(pc) {
            BranchStatus::NotFound | BranchStatus::NotTaken => {
                self.scratch_used = false;
                false
            }
            BranchStatus::Taken => {
                self.scratch_used = false;
                true
            }
            BranchStatus::NonBiased => {
                let mut sum = i32::from(self.wb[((pc >> 2) & 0x3FF) as usize]);
                let mut indices = Vec::with_capacity(self.depth);
                for (col, entry) in self.stack.iter().take(self.depth).enumerate() {
                    let idx = self.row_index(pc, entry) * self.depth + col;
                    indices.push(idx);
                    let w = i32::from(self.wm[idx]);
                    sum += if entry.outcome { w } else { -w };
                }
                self.scratch_sum = sum;
                self.scratch_indices = indices;
                self.scratch_used = true;
                sum >= 0
            }
        };
        self.scratch_pred
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        let status_after = self.classifier.commit(pc, taken);
        if self.scratch_used {
            let mispredicted = (self.scratch_sum >= 0) != taken;
            if mispredicted || self.scratch_sum.abs() <= self.theta {
                let dir = if taken { 1 } else { -1 };
                let bidx = ((pc >> 2) & 0x3FF) as usize;
                self.wb[bidx] = (i32::from(self.wb[bidx]) + dir).clamp(-WB_CLAMP, WB_CLAMP) as i8;
                let outcomes: Vec<bool> = self
                    .stack
                    .iter()
                    .take(self.depth)
                    .map(|e| e.outcome)
                    .collect();
                for (idx, outcome) in self.scratch_indices.clone().into_iter().zip(outcomes) {
                    let x = if outcome { 1 } else { -1 };
                    self.wm[idx] =
                        (i32::from(self.wm[idx]) + dir * x).clamp(-WM_CLAMP, WM_CLAMP) as i8;
                }
            }
        }
        if status_after == BranchStatus::NonBiased {
            self.stack.record(BfNeural::key_of(pc), taken, self.now);
        }
        self.now += 1;
        self.scratch_used = false;
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        s.push("BST", self.classifier.storage_bits());
        s.push("Wm 2-D weights", self.wm.len() as u64 * 7);
        s.push("Wb bias weights", self.wb.len() as u64 * 8);
        s.push("recency stack", self.stack.storage_bits());
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        if self.scratch_used {
            return Some(Provenance {
                component: "perceptron",
                prediction: self.scratch_pred,
                margin: Some(i64::from(self.scratch_sum)),
                history_len: Some(self.depth as u32),
                ..Default::default()
            });
        }
        Some(Provenance::of("bst", self.scratch_pred))
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for IdealBfNeural {
    fn save_state(&self, w: &mut StateWriter) {
        // `theta` is fixed at construction (no adaptive threshold here);
        // the `scratch_*` fields are per-prediction state.
        self.classifier.save_state(w);
        w.i8_slice(&self.wb);
        w.i8_slice(&self.wm);
        self.stack.save_state(w);
        w.u64(self.now);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.classifier.load_state(r)?;
        r.i8_into(&mut self.wb)?;
        r.i8_into(&mut self.wm)?;
        self.stack.load_state(r)?;
        self.now = r.u64()?;
        // A restore drops any in-flight prediction scratch.
        self.scratch_used = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_sim::simulate::simulate;
    use bfbp_trace::rng::Xoshiro256;
    use bfbp_trace::synth::builder::{Filler, ProgramBuilder};

    fn small(mode: HistoryMode) -> BfNeural {
        BfNeural::new(BfNeuralConfig {
            log_bst: 12,
            probabilistic_bst: false,
            log_wm_rows: 9,
            recent_unfiltered: 8,
            log_wrs: 13,
            deep_depth: 16,
            history_mode: mode,
            folded_hist: true,
            positional: true,
            loop_predictor: false,
        })
    }

    #[test]
    fn biased_branches_predicted_by_bst() {
        let mut p = small(HistoryMode::RecencyStack);
        // First sight mispredicts (NotFound), after that the BST nails it.
        let mut misses = 0;
        for i in 0..100 {
            let guess = p.predict(0x40);
            if !guess {
                misses += 1;
            }
            p.update(0x40, true, 0);
            let _ = i;
        }
        assert_eq!(misses, 1, "only the first NotFound encounter misses");
    }

    #[test]
    fn deep_correlation_reachable_only_with_filtering() {
        // Source at dynamic distance ~120 behind distinct biased filler;
        // deep component holds 16 entries. Bias filtering erases the
        // filler, so the source stays within reach; unfiltered mode
        // cannot see it.
        let mut b = ProgramBuilder::new(7);
        b.add_deep_block(120, Filler::DistinctBiased, 6, 0.0, 0, 40, 1);
        let trace = b.build().emit("deep", 40_000, 3);

        let mut unf = small(HistoryMode::Unfiltered);
        let mut filt = small(HistoryMode::BiasFiltered);
        let r_unf = simulate(&mut unf, &trace);
        let r_filt = simulate(&mut filt, &trace);
        assert!(
            r_filt.mpki() < r_unf.mpki() * 0.75,
            "filtered {:.3} vs unfiltered {:.3}",
            r_filt.mpki(),
            r_unf.mpki()
        );
    }

    #[test]
    fn recency_stack_reaches_through_loop_filler() {
        // Loop filler floods a plain bias-filtered history with non-biased
        // instances; only the recency stack collapses them (§III-B).
        let mut b = ProgramBuilder::new(9);
        b.add_deep_block(300, Filler::DeterministicLoop, 6, 0.0, 0, 80, 1);
        let trace = b.build().emit("deep-loop", 60_000, 3);

        let mut filt = small(HistoryMode::BiasFiltered);
        let mut rs = small(HistoryMode::RecencyStack);
        let r_filt = simulate(&mut filt, &trace);
        let r_rs = simulate(&mut rs, &trace);
        assert!(
            r_rs.mpki() < r_filt.mpki() * 0.8,
            "rs {:.3} vs filtered {:.3}",
            r_rs.mpki(),
            r_filt.mpki()
        );
    }

    #[test]
    fn positional_history_separates_loop_iterations() {
        // Figure 4's pattern: the probe is taken only at one hot
        // iteration and only when the guard was taken. Without positional
        // history every iteration sees the same filtered history.
        let mut b = ProgramBuilder::new(3);
        b.add_positional_loop(10, 1);
        let trace = b.build().emit("positional", 60_000, 5);

        let mut with_pos = small(HistoryMode::RecencyStack);
        let mut without = BfNeural::new(BfNeuralConfig {
            positional: false,
            ..*small(HistoryMode::RecencyStack).config()
        });
        let r_with = simulate(&mut with_pos, &trace);
        let r_without = simulate(&mut without, &trace);
        assert!(
            r_with.mpki() < r_without.mpki() * 0.85,
            "with pos {:.3} vs without {:.3}",
            r_with.mpki(),
            r_without.mpki()
        );
    }

    #[test]
    fn near_correlations_learned_via_unfiltered_component() {
        let mut p = small(HistoryMode::RecencyStack);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..20_000 {
            let a = rng.chance(0.5);
            p.predict(0x100);
            p.update(0x100, a, 0);
            let guess = p.predict(0x200);
            p.update(0x200, a, 0);
            if i > 10_000 {
                total += 1;
                if guess == a {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.93, "near correlation accuracy {acc}");
    }

    #[test]
    fn loop_predictor_component_activates() {
        let mut b = ProgramBuilder::new(5);
        b.add_loop_kernel(33, 2, 1);
        b.add_noise_run(10, (0.45, 0.55), 1);
        let trace = b.build().emit("loops", 50_000, 3);
        let mut with_loop = BfNeural::new(BfNeuralConfig {
            loop_predictor: true,
            ..*small(HistoryMode::RecencyStack).config()
        });
        let mut without = small(HistoryMode::RecencyStack);
        let r_with = simulate(&mut with_loop, &trace);
        let r_without = simulate(&mut without, &trace);
        assert!(
            r_with.mpki() <= r_without.mpki() * 1.02,
            "loop {:.3} vs none {:.3}",
            r_with.mpki(),
            r_without.mpki()
        );
    }

    #[test]
    fn storage_64kb_budget() {
        let p = BfNeural::budget_64kb();
        let kib = p.storage().total_kib();
        assert!((55.0..68.0).contains(&kib), "{kib} KiB");
        let p32 = BfNeural::new(BfNeuralConfig::budget_32kb());
        let kib32 = p32.storage().total_kib();
        assert!((25.0..36.0).contains(&kib32), "{kib32} KiB");
    }

    #[test]
    fn ablation_configs_differ_only_in_mode() {
        let a = BfNeuralConfig::ablation_fhist();
        let b = BfNeuralConfig::ablation_bias_free_ghist();
        let c = BfNeuralConfig::ablation_recency_stack();
        assert_eq!(a.history_mode, HistoryMode::Unfiltered);
        assert_eq!(b.history_mode, HistoryMode::BiasFiltered);
        assert_eq!(c.history_mode, HistoryMode::RecencyStack);
        assert_eq!(a.log_wrs, c.log_wrs);
        assert_eq!(b.deep_depth, c.deep_depth);
    }

    #[test]
    fn names_match_figure_9_labels() {
        assert_eq!(
            BfNeural::new(BfNeuralConfig::ablation_fhist()).name(),
            "bf-neural(fhist)"
        );
        assert_eq!(
            BfNeural::new(BfNeuralConfig::ablation_bias_free_ghist()).name(),
            "bf-neural(ghist-bf+fhist)"
        );
        assert_eq!(
            BfNeural::budget_64kb().name(),
            "bf-neural(ghist-bf+rs+fhist)"
        );
    }

    #[test]
    fn ideal_predictor_learns_basic_correlation() {
        let mut p = IdealBfNeural::new(10, 16, Classifier::TwoBit(Bst::new(12)));
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..20_000 {
            let a = rng.chance(0.5);
            p.predict(0x100);
            p.update(0x100, a, 0);
            let guess = p.predict(0x200);
            p.update(0x200, a, 0);
            if i > 10_000 {
                total += 1;
                if guess == a {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "ideal accuracy {acc}");
    }

    #[test]
    fn theta_adapts() {
        let mut p = small(HistoryMode::RecencyStack);
        let before = p.theta();
        let mut rng = Xoshiro256::seed_from_u64(3);
        // Noise forces mispredictions → theta drifts upward.
        for k in 0..4000u64 {
            let t = rng.chance(0.5);
            let pc = 0x40 + (k % 4) * 8;
            p.predict(pc);
            p.update(pc, t, 0);
        }
        assert!(p.theta() >= before);
    }
}
