//! Branch records: the unit of a trace.
//!
//! A trace is a sequence of [`BranchRecord`]s in commit order, mirroring
//! the Championship Branch Prediction (CBP) trace model: every control
//! transfer instruction appears, annotated with the number of ordinary
//! (non-branch) instructions that committed since the previous record so
//! that MPKI (mispredictions per 1000 instructions) can be computed.

use std::fmt;

/// The class of a control-transfer instruction.
///
/// Predictors predict the direction of [`BranchKind::CondDirect`] records
/// only; the remaining kinds are presented to predictors through
/// `track_other` so they can fold them into path history, exactly as the
/// CBP framework does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum BranchKind {
    /// Conditional direct branch — the only kind whose direction is
    /// predicted.
    CondDirect = 0,
    /// Unconditional direct jump.
    UncondDirect = 1,
    /// Unconditional indirect jump.
    Indirect = 2,
    /// Direct function call.
    Call = 3,
    /// Indirect function call.
    IndirectCall = 4,
    /// Function return.
    Return = 5,
}

impl BranchKind {
    /// All kinds, in discriminant order.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::CondDirect,
        BranchKind::UncondDirect,
        BranchKind::Indirect,
        BranchKind::Call,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];

    /// Returns `true` for the conditional kind whose direction predictors
    /// must guess.
    pub fn is_conditional(self) -> bool {
        self == BranchKind::CondDirect
    }

    /// Converts a raw discriminant back into a kind.
    ///
    /// Returns `None` if `value` is not a valid discriminant.
    pub fn from_u8(value: u8) -> Option<Self> {
        Self::ALL.get(value as usize).copied()
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::CondDirect => "cond",
            BranchKind::UncondDirect => "jump",
            BranchKind::Indirect => "ijump",
            BranchKind::Call => "call",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

/// One committed control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: u64,
    /// Address the branch transfers to when taken.
    pub target: u64,
    /// Instruction class.
    pub kind: BranchKind,
    /// Resolved direction. Always `true` for unconditional kinds.
    pub taken: bool,
    /// Number of non-branch instructions committed since the previous
    /// record (the branch itself is not included).
    pub non_branch_insts: u32,
}

impl BranchRecord {
    /// Creates a conditional direct branch record.
    pub fn cond(pc: u64, target: u64, taken: bool, non_branch_insts: u32) -> Self {
        Self {
            pc,
            target,
            kind: BranchKind::CondDirect,
            taken,
            non_branch_insts,
        }
    }

    /// Creates an always-taken record of the given non-conditional kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`BranchKind::CondDirect`]; use
    /// [`BranchRecord::cond`] for conditionals.
    pub fn uncond(pc: u64, target: u64, kind: BranchKind, non_branch_insts: u32) -> Self {
        assert!(
            !kind.is_conditional(),
            "use BranchRecord::cond for conditional branches"
        );
        Self {
            pc,
            target,
            kind,
            taken: true,
            non_branch_insts,
        }
    }

    /// Total instructions this record accounts for: the preceding
    /// non-branch instructions plus the branch itself.
    pub fn instructions(&self) -> u64 {
        u64::from(self.non_branch_insts) + 1
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#x} {} -> {:#x} {}",
            self.pc,
            self.kind,
            self.target,
            if self.taken { "T" } else { "N" }
        )
    }
}

/// An in-memory trace: a named sequence of branch records.
///
/// # Examples
///
/// ```
/// use bfbp_trace::record::{BranchRecord, Trace};
///
/// let trace = Trace::new(
///     "tiny",
///     vec![BranchRecord::cond(0x400, 0x500, true, 4)],
/// );
/// assert_eq!(trace.conditional_count(), 1);
/// assert_eq!(trace.instruction_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    records: Vec<BranchRecord>,
}

impl Trace {
    /// Creates a trace from parts.
    pub fn new(name: impl Into<String>, records: Vec<BranchRecord>) -> Self {
        Self {
            name: name.into(),
            records,
        }
    }

    /// The trace's name (e.g. `"SPEC03"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All records in commit order.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Number of records (branches of all kinds).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of conditional branches.
    pub fn conditional_count(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind.is_conditional())
            .count() as u64
    }

    /// Total committed instructions represented by the trace.
    pub fn instruction_count(&self) -> u64 {
        self.records.iter().map(BranchRecord::instructions).sum()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// Appends a record.
    pub fn push(&mut self, record: BranchRecord) {
        self.records.push(record);
    }

    /// Consumes the trace, returning its records.
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_through_u8() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(BranchKind::from_u8(6), None);
        assert_eq!(BranchKind::from_u8(255), None);
    }

    #[test]
    fn only_cond_direct_is_conditional() {
        for kind in BranchKind::ALL {
            assert_eq!(kind.is_conditional(), kind == BranchKind::CondDirect);
        }
    }

    #[test]
    fn cond_constructor_sets_fields() {
        let r = BranchRecord::cond(0x1000, 0x2000, true, 7);
        assert_eq!(r.pc, 0x1000);
        assert_eq!(r.target, 0x2000);
        assert!(r.taken);
        assert_eq!(r.kind, BranchKind::CondDirect);
        assert_eq!(r.instructions(), 8);
    }

    #[test]
    #[should_panic(expected = "conditional")]
    fn uncond_constructor_rejects_conditional_kind() {
        BranchRecord::uncond(0x1000, 0x2000, BranchKind::CondDirect, 0);
    }

    #[test]
    fn uncond_is_always_taken() {
        let r = BranchRecord::uncond(0x10, 0x20, BranchKind::Call, 3);
        assert!(r.taken);
    }

    #[test]
    fn trace_counts() {
        let mut trace = Trace::new("t", Vec::new());
        assert!(trace.is_empty());
        trace.push(BranchRecord::cond(1, 2, true, 4));
        trace.push(BranchRecord::uncond(3, 4, BranchKind::Return, 2));
        trace.push(BranchRecord::cond(5, 6, false, 0));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.conditional_count(), 2);
        // (4+1) + (2+1) + (0+1)
        assert_eq!(trace.instruction_count(), 9);
    }

    #[test]
    fn trace_iteration_and_extend() {
        let mut trace = Trace::default();
        trace.extend(vec![
            BranchRecord::cond(1, 2, true, 0),
            BranchRecord::cond(3, 4, false, 0),
        ]);
        let pcs: Vec<u64> = trace.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![1, 3]);
        let pcs2: Vec<u64> = (&trace).into_iter().map(|r| r.pc).collect();
        assert_eq!(pcs2, pcs);
    }

    #[test]
    fn display_formats() {
        let r = BranchRecord::cond(0x10, 0x20, false, 0);
        assert_eq!(format!("{r}"), "0x10 cond -> 0x20 N");
        assert_eq!(format!("{}", BranchKind::Return), "ret");
    }
}
