//! Streaming trace sources: fixed-size structure-of-arrays chunks.
//!
//! A [`TraceSource`] hands out [`TraceChunk`]s of at most a caller-chosen
//! record count, so a consumer's working set is O(chunk) regardless of
//! trace length. Three sources cover every way a trace enters the
//! simulator:
//!
//! * [`FileSource`] — incremental decode on top of
//!   [`TraceReader`](crate::format::TraceReader), for BFBT files
//!   (including trace-cache entries);
//! * [`SynthSource`] — on-the-fly synthetic generation from a
//!   [`Program`](crate::synth::program::Program), for suite traces that
//!   were never materialized;
//! * [`ReplaySource`] — replay of an already-materialized
//!   [`Trace`], the bridge for callers that still hold whole traces.
//!
//! All three produce identical record sequences for identical logical
//! traces, so a chunked consumer is byte-for-byte equivalent to one that
//! iterated a `Vec<BranchRecord>`.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use crate::format::{TraceFormatError, TraceReader};
use crate::record::{BranchKind, BranchRecord, Trace};
use crate::synth::program::{Program, StreamState};

/// Default chunk capacity in records. Matches the sweep engine's
/// cancellation-check cadence so a chunk boundary doubles as a
/// cancellation point without changing watchdog latency.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// A fixed-capacity structure-of-arrays batch of branch records.
///
/// Each field of [`BranchRecord`] lives in its own parallel array, so
/// the simulation hot loop reads `pc`/`taken` runs contiguously instead
/// of striding over 32-byte records. All five arrays always have the
/// same length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceChunk {
    pc: Vec<u64>,
    target: Vec<u64>,
    kind: Vec<BranchKind>,
    taken: Vec<bool>,
    inst_gap: Vec<u32>,
}

impl TraceChunk {
    /// Creates an empty chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty chunk with room for `n` records per array.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            pc: Vec::with_capacity(n),
            target: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            taken: Vec::with_capacity(n),
            inst_gap: Vec::with_capacity(n),
        }
    }

    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Removes every record, keeping the allocations.
    pub fn clear(&mut self) {
        self.pc.clear();
        self.target.clear();
        self.kind.clear();
        self.taken.clear();
        self.inst_gap.clear();
    }

    /// Appends one record, splitting it across the arrays.
    pub fn push(&mut self, record: &BranchRecord) {
        self.pc.push(record.pc);
        self.target.push(record.target);
        self.kind.push(record.kind);
        self.taken.push(record.taken);
        self.inst_gap.push(record.non_branch_insts);
    }

    /// Branch addresses, one per record.
    pub fn pcs(&self) -> &[u64] {
        &self.pc
    }

    /// Taken targets, parallel to [`TraceChunk::pcs`].
    pub fn targets(&self) -> &[u64] {
        &self.target
    }

    /// Branch kinds, parallel to [`TraceChunk::pcs`].
    pub fn kinds(&self) -> &[BranchKind] {
        &self.kind
    }

    /// Resolved directions, parallel to [`TraceChunk::pcs`].
    pub fn takens(&self) -> &[bool] {
        &self.taken
    }

    /// Non-branch instruction gaps, parallel to [`TraceChunk::pcs`].
    pub fn inst_gaps(&self) -> &[u32] {
        &self.inst_gap
    }

    /// Reassembles record `i` from the arrays.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn record(&self, i: usize) -> BranchRecord {
        BranchRecord {
            pc: self.pc[i],
            target: self.target[i],
            kind: self.kind[i],
            taken: self.taken[i],
            non_branch_insts: self.inst_gap[i],
        }
    }
}

/// A producer of [`TraceChunk`]s: one logical trace, delivered
/// incrementally in commit order.
pub trait TraceSource {
    /// The trace's display name.
    fn name(&self) -> &str;

    /// Clears `chunk`, refills it with up to `max_records` records, and
    /// returns the number delivered. A return of `0` means the source is
    /// exhausted; callers must not call again after observing it.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFormatError`] when the underlying byte stream
    /// fails to decode (only [`FileSource`] can fail).
    fn fill_chunk(
        &mut self,
        chunk: &mut TraceChunk,
        max_records: usize,
    ) -> Result<usize, TraceFormatError>;
}

/// Chunked decode of a BFBT stream via [`TraceReader`].
///
/// The reader validates the footer (record count + FNV checksum) when it
/// reaches the end marker, so a torn or corrupted file surfaces as an
/// error from [`TraceSource::fill_chunk`] rather than silently
/// truncated records.
#[derive(Debug)]
pub struct FileSource<R: Read> {
    reader: Option<TraceReader<R>>,
    name: String,
}

impl FileSource<File> {
    /// Opens a BFBT file for chunked reading.
    ///
    /// [`TraceReader`] maintains its own read-ahead buffer, so the file
    /// is handed over unwrapped — a `BufReader` here would only add a
    /// second copy of every byte.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFormatError`] if the file cannot be opened or
    /// its header is invalid.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFormatError> {
        let file = File::open(path)?;
        Self::from_reader(file)
    }
}

impl<R: Read> FileSource<R> {
    /// Wraps any byte stream carrying a BFBT trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFormatError`] if the header is invalid.
    pub fn from_reader(inner: R) -> Result<Self, TraceFormatError> {
        let reader = TraceReader::new(inner)?;
        let name = reader.name().to_owned();
        Ok(Self {
            reader: Some(reader),
            name,
        })
    }
}

impl<R: Read> TraceSource for FileSource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn fill_chunk(
        &mut self,
        chunk: &mut TraceChunk,
        max_records: usize,
    ) -> Result<usize, TraceFormatError> {
        chunk.clear();
        let Some(reader) = self.reader.as_mut() else {
            return Ok(0);
        };
        while chunk.len() < max_records {
            match reader.next() {
                Some(Ok(record)) => chunk.push(&record),
                Some(Err(e)) => {
                    // Fuse after a decode error: the stream position is
                    // unrecoverable, so later calls report exhaustion.
                    self.reader = None;
                    return Err(e);
                }
                None => {
                    self.reader = None;
                    break;
                }
            }
        }
        Ok(chunk.len())
    }
}

/// On-the-fly synthetic generation: owns a [`Program`] and its stream
/// state, delivering exactly the record count it was created with.
#[derive(Debug, Clone)]
pub struct SynthSource {
    name: String,
    program: Program,
    state: StreamState,
    remaining: usize,
}

impl SynthSource {
    /// Creates a source that yields the first `n_records` records of
    /// `program`'s stream for `seed` — the same sequence
    /// [`Program::emit`] materializes.
    pub fn new(name: impl Into<String>, program: Program, seed: u64, n_records: usize) -> Self {
        let state = StreamState::new(&program, seed);
        Self {
            name: name.into(),
            program,
            state,
            remaining: n_records,
        }
    }

    /// Records not yet delivered.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl TraceSource for SynthSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn fill_chunk(
        &mut self,
        chunk: &mut TraceChunk,
        max_records: usize,
    ) -> Result<usize, TraceFormatError> {
        chunk.clear();
        let n = max_records.min(self.remaining);
        for _ in 0..n {
            chunk.push(&self.state.next_record(&self.program));
        }
        self.remaining -= n;
        Ok(n)
    }
}

/// Replay of an already-materialized [`Trace`], chunk by chunk.
#[derive(Debug, Clone)]
pub struct ReplaySource<'t> {
    trace: &'t Trace,
    pos: usize,
}

impl<'t> ReplaySource<'t> {
    /// Wraps a trace for chunked replay from its first record.
    pub fn new(trace: &'t Trace) -> Self {
        Self { trace, pos: 0 }
    }
}

impl TraceSource for ReplaySource<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn fill_chunk(
        &mut self,
        chunk: &mut TraceChunk,
        max_records: usize,
    ) -> Result<usize, TraceFormatError> {
        chunk.clear();
        let records = self.trace.records();
        let n = max_records.min(records.len() - self.pos);
        for record in &records[self.pos..self.pos + n] {
            chunk.push(record);
        }
        self.pos += n;
        Ok(n)
    }
}

/// Drains a source into a materialized [`Trace`] — the inverse of
/// [`ReplaySource`], mostly for tests and tools that need the whole
/// trace after all.
///
/// # Errors
///
/// Propagates the first decode error from the source.
pub fn collect_source<S: TraceSource + ?Sized>(source: &mut S) -> Result<Trace, TraceFormatError> {
    let name = source.name().to_owned();
    let mut records = Vec::new();
    let mut chunk = TraceChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    while source.fill_chunk(&mut chunk, DEFAULT_CHUNK_RECORDS)? > 0 {
        for i in 0..chunk.len() {
            records.push(chunk.record(i));
        }
    }
    Ok(Trace::new(name, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_trace;
    use crate::synth::suite;

    fn small_trace() -> Trace {
        suite::find("FP2").unwrap().generate_len(2500)
    }

    #[test]
    fn replay_source_round_trips() {
        let trace = small_trace();
        let mut source = ReplaySource::new(&trace);
        assert_eq!(source.name(), "FP2");
        let back = collect_source(&mut source).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn replay_chunks_are_bounded_and_exact() {
        let trace = small_trace();
        let mut source = ReplaySource::new(&trace);
        let mut chunk = TraceChunk::new();
        let mut total = 0;
        loop {
            let n = source.fill_chunk(&mut chunk, 512).unwrap();
            assert!(n <= 512);
            assert_eq!(n, chunk.len());
            for i in 0..n {
                assert_eq!(chunk.record(i), trace.records()[total + i]);
            }
            total += n;
            if n == 0 {
                break;
            }
        }
        assert_eq!(total, trace.len());
    }

    #[test]
    fn synth_source_matches_generate_len() {
        let spec = suite::find("SPEC03").unwrap();
        let materialized = spec.generate_len(3000);
        let mut source = spec.stream_len(3000);
        assert_eq!(source.remaining(), 3000);
        let streamed = collect_source(&mut source).unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!(source.remaining(), 0);
    }

    #[test]
    fn file_source_matches_replay() {
        let trace = small_trace();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let mut source = FileSource::from_reader(&bytes[..]).unwrap();
        assert_eq!(source.name(), "FP2");
        let back = collect_source(&mut source).unwrap();
        assert_eq!(back, trace);
        // Exhausted source keeps reporting 0.
        let mut chunk = TraceChunk::new();
        assert_eq!(source.fill_chunk(&mut chunk, 64).unwrap(), 0);
    }

    #[test]
    fn file_source_surfaces_corruption() {
        let trace = small_trace();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        bytes.truncate(bytes.len() - 3); // tear the footer off
        let mut source = FileSource::from_reader(&bytes[..]).unwrap();
        let mut chunk = TraceChunk::new();
        let mut failed = false;
        loop {
            match source.fill_chunk(&mut chunk, 512) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "torn footer must surface as a decode error");
        // Fused after the error.
        assert_eq!(source.fill_chunk(&mut chunk, 512).unwrap(), 0);
    }

    #[test]
    fn chunk_accessors_stay_parallel() {
        let mut chunk = TraceChunk::with_capacity(4);
        chunk.push(&BranchRecord::cond(0x10, 0x50, true, 3));
        chunk.push(&BranchRecord::uncond(0x20, 0x90, BranchKind::Call, 7));
        assert_eq!(chunk.len(), 2);
        assert!(!chunk.is_empty());
        assert_eq!(chunk.pcs(), &[0x10, 0x20]);
        assert_eq!(chunk.targets(), &[0x50, 0x90]);
        assert_eq!(chunk.kinds(), &[BranchKind::CondDirect, BranchKind::Call]);
        assert_eq!(chunk.takens(), &[true, true]);
        assert_eq!(chunk.inst_gaps(), &[3, 7]);
        assert_eq!(chunk.record(1).kind, BranchKind::Call);
        chunk.clear();
        assert!(chunk.is_empty());
    }
}
