//! # bfbp-trace
//!
//! Branch-trace substrate for the Bias-Free Branch Predictor
//! reproduction: record types, a binary on-disk trace format with a
//! streaming parser, trace statistics (including the paper's Figure 2
//! bias profile), and a deterministic synthetic workload engine that
//! stands in for the proprietary CBP-4 trace suite.
//!
//! ## Quick start
//!
//! ```
//! use bfbp_trace::synth::suite;
//! use bfbp_trace::stats::BiasProfile;
//!
//! // Generate a scaled-down version of the suite's SPEC03 trace.
//! let spec = suite::find("SPEC03").expect("SPEC03 is in the suite");
//! let trace = spec.generate_len(20_000);
//! let profile = BiasProfile::measure(&trace);
//! println!(
//!     "{}: {:.1}% of static branches completely biased",
//!     trace.name(),
//!     profile.static_biased_percent()
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod format;
pub mod record;
pub mod rng;
pub mod source;
pub mod stats;
pub mod synth;

pub use cache::{CacheStatus, TraceCache};
pub use format::{
    read_trace, read_trace_file, write_trace, TraceFormatError, TraceReader, TraceWriter,
};
pub use record::{BranchKind, BranchRecord, Trace};
pub use source::{
    collect_source, FileSource, ReplaySource, SynthSource, TraceChunk, TraceSource,
    DEFAULT_CHUNK_RECORDS,
};
