//! Content-addressed on-disk cache for generated suite traces.
//!
//! Synthetic generation is deterministic, so a `(spec, record count)`
//! pair always produces the same trace — there is no reason to pay the
//! generation cost more than once per machine. The cache stores each
//! generated trace as an ordinary BFBT file under a directory (default
//! `target/trace-cache/`) keyed by [`TraceSpec::fingerprint`], which
//! folds in the generator version so stale entries from an older
//! generator can never be served.
//!
//! Robustness mirrors the sweep journal's torn-write story: entries are
//! written to a temporary file and atomically renamed into place, and a
//! reader that finds a torn or corrupted entry (BFBT self-validates via
//! its footer count and FNV checksum) silently regenerates instead of
//! failing. The cache is therefore safe under concurrent writers and
//! interrupted runs — the worst case is wasted work, never a wrong
//! trace.
//!
//! The `BFBP_TRACE_CACHE` environment variable controls the cache
//! machine-wide: unset or `1`/`on` enables the default directory,
//! `0`/`off` disables caching, and any other value is used as the cache
//! directory path.

use std::fs;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

use crate::format::{read_trace_file, TraceWriter};
use crate::record::Trace;
use crate::synth::suite::TraceSpec;

/// How a [`TraceCache::fetch`] obtained its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from a valid on-disk entry; no generation ran.
    Hit,
    /// No entry existed at all (cold miss); the trace was generated
    /// (and stored, best-effort).
    Generated,
    /// An entry existed on disk but failed validation — torn, corrupted,
    /// or mismatched — and was regenerated over. Distinct from
    /// [`CacheStatus::Generated`] so silent corruption recovery is
    /// countable in metrics and event journals.
    Regenerated,
    /// The cache is disabled; the trace was generated and not stored.
    Bypassed,
}

impl CacheStatus {
    /// Stable lower-case keyword for logs and event journals.
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Generated => "generated",
            CacheStatus::Regenerated => "regenerated",
            CacheStatus::Bypassed => "bypassed",
        }
    }

    /// Whether this fetch ran the synthetic generator.
    pub fn generated(self) -> bool {
        !matches!(self, CacheStatus::Hit)
    }
}

/// A content-addressed trace cache rooted at one directory, or disabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCache {
    /// `None` disables the cache entirely.
    dir: Option<PathBuf>,
}

impl TraceCache {
    /// A cache that never reads or writes disk: every fetch generates.
    pub fn disabled() -> Self {
        Self { dir: None }
    }

    /// A cache rooted at an explicit directory (created lazily on the
    /// first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: Some(dir.into()),
        }
    }

    /// A cache at the default location: `trace-cache/` inside the
    /// enclosing cargo `target` directory (found by walking up from the
    /// running executable), falling back to `target/trace-cache` under
    /// the current directory. Every binary and test of one checkout
    /// therefore shares a single cache.
    pub fn default_location() -> Self {
        Self::at(default_dir())
    }

    /// Builds the cache from the `BFBP_TRACE_CACHE` environment
    /// variable; see the module docs for the accepted values.
    pub fn from_env() -> Self {
        Self::from_env_with(|name| std::env::var(name).ok())
    }

    /// [`TraceCache::from_env`] with an injectable variable lookup, so
    /// tests can pin the environment instead of mutating the real
    /// (process-global, racy) one.
    pub fn from_env_with<F>(lookup: F) -> Self
    where
        F: Fn(&str) -> Option<String>,
    {
        match lookup("BFBP_TRACE_CACHE").as_deref() {
            None | Some("") | Some("1") | Some("on") => Self::default_location(),
            Some("0") | Some("off") => Self::disabled(),
            Some(dir) => Self::at(dir),
        }
    }

    /// Whether fetches may be served from (and stored to) disk.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The cache directory, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The on-disk path an entry for `(spec, n_records)` lives at, if
    /// the cache is enabled. The file name embeds the content
    /// fingerprint, so any input change (including a generator-version
    /// bump) addresses a different file and old entries simply go cold.
    pub fn entry_path(&self, spec: &TraceSpec, n_records: usize) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:016x}.bfbt",
                spec.name(),
                spec.fingerprint(n_records)
            ))
        })
    }

    /// Returns the trace for `(spec, n_records)`, serving a valid cache
    /// entry when one exists and generating (then storing, best-effort)
    /// otherwise. A torn, corrupted, or mismatched entry is treated as
    /// absent and regenerated — the returned trace is always correct.
    pub fn fetch(&self, spec: &TraceSpec, n_records: usize) -> (Trace, CacheStatus) {
        let Some(path) = self.entry_path(spec, n_records) else {
            return (spec.generate_len(n_records), CacheStatus::Bypassed);
        };
        let existed = path.exists();
        if let Ok(trace) = read_trace_file(&path) {
            // The fingerprint in the file name is the real key; the
            // name/length check only guards against hash collisions and
            // hand-renamed files.
            if trace.name() == spec.name() && trace.len() == n_records {
                return (trace, CacheStatus::Hit);
            }
        }
        let trace = spec.generate_len(n_records);
        if let Err(e) = store_atomically(&path, &trace) {
            // Failing to persist costs future runs time, never
            // correctness; a read-only checkout must still simulate.
            eprintln!(
                "warning: cannot store trace-cache entry {}: {e}",
                path.display()
            );
        }
        let status = if existed {
            CacheStatus::Regenerated
        } else {
            CacheStatus::Generated
        };
        (trace, status)
    }
}

/// Writes `trace` to a temporary sibling of `path` and renames it into
/// place, so concurrent fetchers and interrupted runs can never observe
/// a half-written entry under the final name.
fn store_atomically(path: &Path, trace: &Trace) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let file = fs::File::create(&tmp)?;
        let mut writer = TraceWriter::new(BufWriter::new(file), trace.name())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        for record in trace.records() {
            writer
                .write(record)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        writer
            .finish()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Finds the enclosing cargo `target` directory by walking up from the
/// running executable (benches, tests, and binaries all live somewhere
/// under it); falls back to a relative `target/`.
fn default_dir() -> PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.join("trace-cache");
            }
        }
    }
    PathBuf::from("target").join("trace-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::suite;

    fn temp_cache(tag: &str) -> TraceCache {
        let dir = std::env::temp_dir().join(format!(
            "bfbp-trace-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        TraceCache::at(dir)
    }

    fn cleanup(cache: &TraceCache) {
        if let Some(dir) = cache.dir() {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn cold_then_warm_round_trip() {
        let cache = temp_cache("roundtrip");
        let spec = suite::find("MM2").unwrap();
        let (cold, s1) = cache.fetch(&spec, 2000);
        assert_eq!(s1, CacheStatus::Generated);
        assert!(s1.generated());
        let (warm, s2) = cache.fetch(&spec, 2000);
        assert_eq!(s2, CacheStatus::Hit);
        assert!(!s2.generated());
        assert_eq!(cold, warm);
        assert_eq!(warm, spec.generate_len(2000));
        cleanup(&cache);
    }

    #[test]
    fn corrupted_entry_falls_back_to_regeneration() {
        let cache = temp_cache("corrupt");
        let spec = suite::find("INT1").unwrap();
        let (reference, _) = cache.fetch(&spec, 1500);
        let path = cache.entry_path(&spec, 1500).unwrap();
        // Tear the file: drop the footer so the checksum never
        // validates.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (recovered, status) = cache.fetch(&spec, 1500);
        assert_eq!(status, CacheStatus::Regenerated);
        assert!(status.generated());
        assert_eq!(recovered, reference);
        // The repaired entry serves hits again.
        assert_eq!(cache.fetch(&spec, 1500).1, CacheStatus::Hit);
        cleanup(&cache);
    }

    #[test]
    fn lengths_address_distinct_entries() {
        let cache = temp_cache("lengths");
        let spec = suite::find("SERV1").unwrap();
        assert_ne!(
            cache.entry_path(&spec, 1000).unwrap(),
            cache.entry_path(&spec, 2000).unwrap()
        );
        let (a, _) = cache.fetch(&spec, 1000);
        let (b, _) = cache.fetch(&spec, 2000);
        assert_eq!(a.len(), 1000);
        assert_eq!(b.len(), 2000);
        assert_eq!(cache.fetch(&spec, 1000).1, CacheStatus::Hit);
        assert_eq!(cache.fetch(&spec, 2000).1, CacheStatus::Hit);
        cleanup(&cache);
    }

    #[test]
    fn disabled_cache_always_bypasses() {
        let cache = TraceCache::disabled();
        assert!(!cache.is_enabled());
        assert!(cache.dir().is_none());
        let spec = suite::find("FP1").unwrap();
        assert!(cache.entry_path(&spec, 1000).is_none());
        let (trace, status) = cache.fetch(&spec, 1000);
        assert_eq!(status, CacheStatus::Bypassed);
        assert_eq!(trace, spec.generate_len(1000));
    }

    #[test]
    fn env_knob_selects_mode() {
        assert!(!TraceCache::from_env_with(|_| Some("0".into())).is_enabled());
        assert!(!TraceCache::from_env_with(|_| Some("off".into())).is_enabled());
        assert!(TraceCache::from_env_with(|_| None).is_enabled());
        assert!(TraceCache::from_env_with(|_| Some("1".into())).is_enabled());
        assert!(TraceCache::from_env_with(|_| Some("on".into())).is_enabled());
        let custom = TraceCache::from_env_with(|name| {
            assert_eq!(name, "BFBP_TRACE_CACHE");
            Some("/tmp/bfbp-custom-cache".into())
        });
        assert_eq!(custom.dir(), Some(Path::new("/tmp/bfbp-custom-cache")));
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(CacheStatus::Hit.name(), "hit");
        assert_eq!(CacheStatus::Generated.name(), "generated");
        assert_eq!(CacheStatus::Regenerated.name(), "regenerated");
        assert_eq!(CacheStatus::Bypassed.name(), "bypassed");
    }
}
