//! Binary on-disk trace format with a streaming reader and writer.
//!
//! This is the "trace parsing harness" of the reproduction: the CBP
//! evaluation framework distributes branch traces as compressed binary
//! streams, and downstream users of this library will want to run the
//! predictors against their own recorded traces. The format is:
//!
//! ```text
//! magic   b"BFBT"
//! version u16 little-endian (currently 1)
//! name    varint length + UTF-8 bytes
//! records repeated:
//!     tag  u8: bit7 = taken, bits0..6 = kind discriminant (0x7F = end)
//!     pc      varint (delta-zigzag from previous pc)
//!     target  varint (delta-zigzag from pc)
//!     insts   varint
//! footer  end tag 0x7F, record count varint, checksum u64 (FNV-1a over
//!         all record bytes)
//! ```
//!
//! Varints are LEB128. PC/target deltas keep typical records at 4–6 bytes.
//!
//! # Examples
//!
//! ```
//! use bfbp_trace::format::{read_trace, write_trace};
//! use bfbp_trace::record::{BranchRecord, Trace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = Trace::new("t", vec![BranchRecord::cond(0x40, 0x80, true, 3)]);
//! let mut buf = Vec::new();
//! write_trace(&mut buf, &trace)?;
//! let back = read_trace(&buf[..])?;
//! assert_eq!(back, trace);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::record::{BranchKind, BranchRecord, Trace};

/// Magic bytes identifying a trace file.
pub const MAGIC: [u8; 4] = *b"BFBT";
/// Current format version.
pub const VERSION: u16 = 1;

const END_TAG: u8 = 0x7F;

/// Errors produced while reading or writing a trace file.
#[derive(Debug)]
pub enum TraceFormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream's version is not supported.
    UnsupportedVersion(u16),
    /// A record carried an invalid branch-kind discriminant.
    BadKind(u8),
    /// A varint ran past its maximum width.
    MalformedVarint,
    /// The trace name was not valid UTF-8.
    BadName,
    /// The footer checksum did not match the records read.
    ChecksumMismatch {
        /// Checksum recorded in the file footer.
        expected: u64,
        /// Checksum computed over the records actually read.
        actual: u64,
    },
    /// The footer record count did not match the records read.
    CountMismatch {
        /// Count recorded in the file footer.
        expected: u64,
        /// Number of records actually read.
        actual: u64,
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::Io(e) => write!(f, "i/o error: {e}"),
            TraceFormatError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            TraceFormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceFormatError::BadKind(k) => write!(f, "invalid branch kind {k}"),
            TraceFormatError::MalformedVarint => write!(f, "malformed varint"),
            TraceFormatError::BadName => write!(f, "trace name is not valid utf-8"),
            TraceFormatError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: footer {expected:#x}, computed {actual:#x}"
            ),
            TraceFormatError::CountMismatch { expected, actual } => {
                write!(f, "record count mismatch: footer {expected}, read {actual}")
            }
        }
    }
}

impl Error for TraceFormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFormatError {
    fn from(e: io::Error) -> Self {
        TraceFormatError::Io(e)
    }
}

fn write_varint<W: Write>(w: &mut W, mut value: u64, hash: &mut Fnv) -> io::Result<()> {
    loop {
        let mut byte = (value & 0x7F) as u8;
        value >>= 7;
        if value != 0 {
            byte |= 0x80;
        }
        hash.update(&[byte]);
        w.write_all(&[byte])?;
        if value == 0 {
            return Ok(());
        }
    }
}

fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Running FNV-1a hash, used as the stream checksum.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.update1(b);
        }
    }

    #[inline]
    fn update1(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x100_0000_01B3);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Streaming trace writer.
///
/// Call [`TraceWriter::write`] for each record, then [`TraceWriter::finish`]
/// to emit the footer. Dropping without `finish` produces a truncated file
/// that the reader will reject.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    hash: Fnv,
    count: u64,
    prev_pc: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Returns an error if writing the header fails.
    pub fn new(mut inner: W, name: &str) -> Result<Self, TraceFormatError> {
        inner.write_all(&MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        let mut scratch = Fnv::new();
        write_varint(&mut inner, name.len() as u64, &mut scratch)?;
        inner.write_all(name.as_bytes())?;
        Ok(Self {
            inner,
            hash: Fnv::new(),
            count: 0,
            prev_pc: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying writer fails.
    pub fn write(&mut self, record: &BranchRecord) -> Result<(), TraceFormatError> {
        let tag = (record.kind as u8) | if record.taken { 0x80 } else { 0 };
        self.hash.update(&[tag]);
        self.inner.write_all(&[tag])?;
        // Wrapping deltas: bijective for the full u64 range (a plain
        // signed subtraction overflows for pcs more than i64::MAX apart).
        write_varint(
            &mut self.inner,
            zigzag(record.pc.wrapping_sub(self.prev_pc) as i64),
            &mut self.hash,
        )?;
        write_varint(
            &mut self.inner,
            zigzag(record.target.wrapping_sub(record.pc) as i64),
            &mut self.hash,
        )?;
        write_varint(
            &mut self.inner,
            u64::from(record.non_branch_insts),
            &mut self.hash,
        )?;
        self.prev_pc = record.pc;
        self.count += 1;
        Ok(())
    }

    /// Writes the footer and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying writer fails.
    pub fn finish(mut self) -> Result<W, TraceFormatError> {
        self.inner.write_all(&[END_TAG])?;
        let mut scratch = Fnv::new();
        write_varint(&mut self.inner, self.count, &mut scratch)?;
        self.inner.write_all(&self.hash.finish().to_le_bytes())?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Internal read-ahead buffer size for [`TraceReader`]. Records average
/// 4–6 bytes, so one refill serves thousands of records.
const READER_BUF_BYTES: usize = 16 * 1024;

/// Streaming trace reader; an [`Iterator`] over records.
///
/// The footer (count + checksum) is validated when the end tag is reached;
/// validation failures surface as the iterator's final `Some(Err(..))`.
///
/// The reader maintains its own read-ahead buffer and decodes tags and
/// varints byte-by-byte from it, so the per-record hot path never issues
/// a sub-buffer read against the underlying source; wrapping the source
/// in a `BufReader` is unnecessary.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    buf: Box<[u8]>,
    pos: usize,
    filled: usize,
    name: String,
    hash: Fnv,
    count: u64,
    prev_pc: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Creates a reader, consuming and validating the header.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, bad magic, unsupported version, or
    /// a malformed name.
    pub fn new(inner: R) -> Result<Self, TraceFormatError> {
        let mut reader = Self {
            inner,
            buf: vec![0u8; READER_BUF_BYTES].into_boxed_slice(),
            pos: 0,
            filled: 0,
            name: String::new(),
            hash: Fnv::new(),
            count: 0,
            prev_pc: 0,
            done: false,
        };
        let mut magic = [0u8; 4];
        reader.fill_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceFormatError::BadMagic(magic));
        }
        let mut ver = [0u8; 2];
        reader.fill_exact(&mut ver)?;
        let version = u16::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceFormatError::UnsupportedVersion(version));
        }
        let name_len = reader.varint_unhashed()? as usize;
        let mut name_bytes = vec![0u8; name_len];
        reader.fill_exact(&mut name_bytes)?;
        reader.name = String::from_utf8(name_bytes).map_err(|_| TraceFormatError::BadName)?;
        Ok(reader)
    }

    /// The trace name from the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One byte off the read-ahead buffer, refilling from the source when
    /// the buffer runs dry. EOF mid-stream surfaces as an `UnexpectedEof`
    /// I/O error, matching `Read::read_exact`.
    #[inline]
    fn next_byte(&mut self) -> Result<u8, TraceFormatError> {
        if self.pos == self.filled {
            self.refill()?;
        }
        let byte = self.buf[self.pos];
        self.pos += 1;
        Ok(byte)
    }

    #[cold]
    fn refill(&mut self) -> Result<(), TraceFormatError> {
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    return Err(TraceFormatError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "unexpected end of trace stream",
                    )))
                }
                Ok(n) => {
                    self.pos = 0;
                    self.filled = n;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn fill_exact(&mut self, out: &mut [u8]) -> Result<(), TraceFormatError> {
        for slot in out.iter_mut() {
            *slot = self.next_byte()?;
        }
        Ok(())
    }

    /// A record-body varint; every consumed byte feeds the running
    /// stream checksum.
    #[inline]
    fn varint(&mut self) -> Result<u64, TraceFormatError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.next_byte()?;
            self.hash.update1(byte);
            if shift >= 64 {
                return Err(TraceFormatError::MalformedVarint);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// A framing varint (header name length, footer record count): not
    /// part of the checksummed record bytes.
    fn varint_unhashed(&mut self) -> Result<u64, TraceFormatError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.next_byte()?;
            if shift >= 64 {
                return Err(TraceFormatError::MalformedVarint);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn read_record(&mut self) -> Result<Option<BranchRecord>, TraceFormatError> {
        let tag = self.next_byte()?;
        if tag == END_TAG {
            let expected_count = self.varint_unhashed()?;
            let mut sum = [0u8; 8];
            self.fill_exact(&mut sum)?;
            let expected = u64::from_le_bytes(sum);
            let actual = self.hash.finish();
            if expected_count != self.count {
                return Err(TraceFormatError::CountMismatch {
                    expected: expected_count,
                    actual: self.count,
                });
            }
            if expected != actual {
                return Err(TraceFormatError::ChecksumMismatch { expected, actual });
            }
            return Ok(None);
        }
        self.hash.update1(tag);
        let taken = tag & 0x80 != 0;
        let kind = BranchKind::from_u8(tag & 0x7F).ok_or(TraceFormatError::BadKind(tag & 0x7F))?;
        let pc = self.prev_pc.wrapping_add(unzigzag(self.varint()?) as u64);
        let target = pc.wrapping_add(unzigzag(self.varint()?) as u64);
        let insts = self.varint()? as u32;
        self.prev_pc = pc;
        self.count += 1;
        Ok(Some(BranchRecord {
            pc,
            target,
            kind,
            taken,
            non_branch_insts: insts,
        }))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<BranchRecord, TraceFormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Writes an entire in-memory trace to `writer`.
///
/// The `writer` can be any [`Write`] implementation; pass `&mut file` to
/// keep ownership of a file.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_trace<W: Write>(writer: W, trace: &Trace) -> Result<(), TraceFormatError> {
    let mut tw = TraceWriter::new(writer, trace.name())?;
    for record in trace {
        tw.write(record)?;
    }
    tw.finish()?;
    Ok(())
}

/// Reads an entire trace from `reader` into memory.
///
/// The `reader` can be any [`Read`] implementation; pass `&mut file` to
/// keep ownership of a file.
///
/// # Errors
///
/// Returns an error on I/O failure or any format violation, including
/// checksum or record-count mismatches.
pub fn read_trace<R: Read>(reader: R) -> Result<Trace, TraceFormatError> {
    let mut tr = TraceReader::new(reader)?;
    let name = tr.name().to_owned();
    let mut records = Vec::new();
    for record in &mut tr {
        records.push(record?);
    }
    Ok(Trace::new(name, records))
}

/// Opens and fully reads (and thereby validates) a trace file.
///
/// Every format check the streaming reader performs — magic, version,
/// varint shape, branch kinds, the footer count and checksum — runs
/// before a single record is handed to a simulation, so a corrupt file
/// surfaces as one structured [`TraceFormatError`] at load time instead
/// of garbage results later.
///
/// # Errors
///
/// Returns an error if the file cannot be opened or fails any format
/// validation.
pub fn read_trace_file(path: impl AsRef<std::path::Path>) -> Result<Trace, TraceFormatError> {
    let file = std::fs::File::open(path)?;
    read_trace(file)
}

pub mod corrupt {
    //! Deterministic trace-stream corruption, for fault injection and
    //! robustness tests.
    //!
    //! Each [`CorruptKind`] names one [`TraceFormatError`] variant;
    //! [`corrupted`] serializes a healthy trace and then mutates exactly
    //! the bytes needed so that reading the stream back fails with that
    //! variant. The sweep engine's fault-injection harness uses this to
    //! manufacture *real* trace-parse failures (the error path through
    //! `read_trace` is genuinely exercised, not simulated with a
    //! hand-built error value).

    use super::{write_trace, Trace, END_TAG, MAGIC};

    /// Which [`super::TraceFormatError`] variant a corruption provokes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum CorruptKind {
        /// Overwrites the magic → [`super::TraceFormatError::BadMagic`].
        BadMagic,
        /// Bumps the version → [`super::TraceFormatError::UnsupportedVersion`].
        UnsupportedVersion,
        /// Over-long name-length varint → [`super::TraceFormatError::MalformedVarint`].
        MalformedVarint,
        /// Flips a record's taken bit → [`super::TraceFormatError::ChecksumMismatch`].
        ChecksumMismatch,
        /// Bumps the footer count → [`super::TraceFormatError::CountMismatch`].
        CountMismatch,
        /// Invalid branch-kind discriminant → [`super::TraceFormatError::BadKind`].
        BadKind,
        /// Non-UTF-8 name byte → [`super::TraceFormatError::BadName`].
        BadName,
    }

    impl CorruptKind {
        /// Every corruption kind, one per recoverable reader error.
        pub const ALL: [CorruptKind; 7] = [
            CorruptKind::BadMagic,
            CorruptKind::UnsupportedVersion,
            CorruptKind::MalformedVarint,
            CorruptKind::ChecksumMismatch,
            CorruptKind::CountMismatch,
            CorruptKind::BadKind,
            CorruptKind::BadName,
        ];

        /// Stable kebab-case name (used by `--fault-plan io@JOB=KIND`).
        pub fn name(self) -> &'static str {
            match self {
                CorruptKind::BadMagic => "bad-magic",
                CorruptKind::UnsupportedVersion => "bad-version",
                CorruptKind::MalformedVarint => "bad-varint",
                CorruptKind::ChecksumMismatch => "checksum",
                CorruptKind::CountMismatch => "count",
                CorruptKind::BadKind => "bad-kind",
                CorruptKind::BadName => "bad-name",
            }
        }

        /// Parses the [`CorruptKind::name`] form.
        pub fn parse(text: &str) -> Option<Self> {
            Self::ALL.iter().copied().find(|k| k.name() == text)
        }
    }

    /// Serializes `trace` and corrupts the bytes to provoke `kind` on
    /// read-back.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not leave room for surgical corruption:
    /// it needs 1–126 records and a 1–126 byte ASCII name (so the name
    /// and footer-count varints are single bytes at known offsets).
    /// Every in-tree synthetic trace and test fixture satisfies this
    /// after truncation.
    pub fn corrupted(trace: &Trace, kind: CorruptKind) -> Vec<u8> {
        let name_len = trace.name().len();
        assert!(
            (1..127).contains(&name_len) && trace.name().is_ascii(),
            "corrupted() needs a 1-126 byte ASCII trace name"
        );
        assert!(
            (1..127).contains(&trace.len()),
            "corrupted() needs 1-126 records, got {}",
            trace.len()
        );
        let mut buf = Vec::new();
        write_trace(&mut buf, trace).expect("in-memory serialization cannot fail");
        // Layout: magic[0..4] version[4..6] name_len@6 name[7..7+len]
        // records... END_TAG count_varint checksum[8].
        let first_tag = 4 + 2 + 1 + name_len;
        let count_at = buf.len() - 9;
        debug_assert_eq!(buf[0..4], MAGIC);
        debug_assert_eq!(buf[count_at - 1], END_TAG);
        match kind {
            CorruptKind::BadMagic => buf[0] = b'X',
            CorruptKind::UnsupportedVersion => buf[4..6].copy_from_slice(&99u16.to_le_bytes()),
            // 11 continuation bytes push the varint shift past 64 bits.
            CorruptKind::MalformedVarint => {
                buf.splice(6..7, std::iter::repeat_n(0x80, 11));
            }
            CorruptKind::ChecksumMismatch => buf[first_tag] ^= 0x80,
            CorruptKind::CountMismatch => buf[count_at] += 1,
            CorruptKind::BadKind => buf[first_tag] = 0x7E,
            CorruptKind::BadName => buf[7] = 0xFF,
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                BranchRecord::cond(0x400_000, 0x400_040, true, 5),
                BranchRecord::cond(0x400_040, 0x400_000, false, 2),
                BranchRecord::uncond(0x400_100, 0x500_000, BranchKind::Call, 9),
                BranchRecord::uncond(0x500_010, 0x400_104, BranchKind::Return, 1),
                BranchRecord::cond(0x400_108, 0x400_000, true, 0),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_records() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn roundtrip_empty_trace() {
        let trace = Trace::new("empty", Vec::new());
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.name(), "empty");
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01\x00".to_vec();
        match read_trace(&buf[..]) {
            Err(TraceFormatError::BadMagic(m)) => assert_eq!(&m, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(&buf[..]),
            Err(TraceFormatError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corrupted_body_fails_checksum() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        // Flip a taken bit inside the body (first record tag after header).
        let header_len = 4 + 2 + 1 + "sample".len();
        buf[header_len] ^= 0x80;
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(
            matches!(err, TraceFormatError::ChecksumMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(read_trace(&buf[..]), Err(TraceFormatError::Io(_))));
    }

    #[test]
    fn reader_exposes_name_and_streams() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        assert_eq!(reader.name(), "sample");
        let n = (&mut reader).inspect(|r| assert!(r.is_ok())).count();
        assert_eq!(n, 5);
        // Exhausted reader keeps returning None.
        assert!(reader.next().is_none());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn every_corrupt_kind_provokes_its_error() {
        use corrupt::{corrupted, CorruptKind};
        let trace = sample_trace();
        for kind in CorruptKind::ALL {
            let buf = corrupted(&trace, kind);
            let err = read_trace(&buf[..]).expect_err("corrupted stream must fail");
            let matches = match kind {
                CorruptKind::BadMagic => matches!(err, TraceFormatError::BadMagic(_)),
                CorruptKind::UnsupportedVersion => {
                    matches!(err, TraceFormatError::UnsupportedVersion(99))
                }
                CorruptKind::MalformedVarint => {
                    matches!(err, TraceFormatError::MalformedVarint)
                }
                CorruptKind::ChecksumMismatch => {
                    matches!(err, TraceFormatError::ChecksumMismatch { .. })
                }
                CorruptKind::CountMismatch => {
                    matches!(err, TraceFormatError::CountMismatch { .. })
                }
                CorruptKind::BadKind => matches!(err, TraceFormatError::BadKind(0x7E)),
                CorruptKind::BadName => matches!(err, TraceFormatError::BadName),
            };
            assert!(matches, "{kind:?} produced {err:?}");
        }
    }

    #[test]
    fn corrupt_kind_names_round_trip() {
        use corrupt::CorruptKind;
        for kind in CorruptKind::ALL {
            assert_eq!(CorruptKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CorruptKind::parse("nope"), None);
    }

    #[test]
    fn read_trace_file_round_trips_and_validates() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("bfbp-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bfbt");
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        std::fs::write(&path, &buf).unwrap();
        assert_eq!(read_trace_file(&path).unwrap(), trace);

        let bad = dir.join("bad.bfbt");
        std::fs::write(
            &bad,
            corrupt::corrupted(&trace, corrupt::CorruptKind::ChecksumMismatch),
        )
        .unwrap();
        assert!(matches!(
            read_trace_file(&bad),
            Err(TraceFormatError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            read_trace_file(dir.join("missing.bfbt")),
            Err(TraceFormatError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display_nonempty() {
        let errors: Vec<TraceFormatError> = vec![
            TraceFormatError::BadMagic(*b"ABCD"),
            TraceFormatError::UnsupportedVersion(9),
            TraceFormatError::BadKind(77),
            TraceFormatError::MalformedVarint,
            TraceFormatError::BadName,
            TraceFormatError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            TraceFormatError::CountMismatch {
                expected: 3,
                actual: 4,
            },
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }
}
