//! Small, self-contained pseudo-random number generators.
//!
//! Workload synthesis must be **bit-stable forever**: a dependency version
//! bump must never change the traces that the experiment harness consumes,
//! or every recorded MPKI number in `EXPERIMENTS.md` silently drifts. We
//! therefore implement the two well-known generators we need (SplitMix64
//! for seeding, xoshiro256** for the stream) rather than depending on the
//! `rand` crate.
//!
//! # Examples
//!
//! ```
//! use bfbp_trace::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(42);
//! let mut b = Xoshiro256::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 generator, used to expand a single `u64` seed into the
/// larger state required by [`Xoshiro256`].
///
/// Reference: Steele, Lea, Flood, *Fast Splittable Pseudorandom Number
/// Generators*, OOPSLA 2014.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator: fast, high-quality, 256-bit state.
///
/// Reference: Blackman & Vigna, *Scrambled Linear Pseudorandom Number
/// Generators*, ACM TOMS 2021.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with [`SplitMix64`], as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is invalid; SplitMix64 makes this astronomically
        // unlikely, but guard anyway so the type upholds its invariant.
        if s == [0, 0, 0, 0] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// The raw 256-bit state, for external serialization (checkpoints).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restores a state previously returned by [`Xoshiro256::state`].
    /// An all-zero state is invalid for xoshiro256** and is replaced by a
    /// fixed non-zero state, mirroring [`Xoshiro256::seed_from_u64`].
    pub fn set_state(&mut self, s: [u64; 4]) {
        self.s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire's multiply-shift bounded generation (biased by at most
        // 2^-64, irrelevant here).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism check against itself.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(99);
        let mut b = Xoshiro256::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0 + 1e-12));
        }
    }

    #[test]
    fn chance_statistics() {
        let mut rng = Xoshiro256::seed_from_u64(123);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_bound_panics() {
        Xoshiro256::seed_from_u64(0).below(0);
    }

    #[test]
    fn pick_returns_element() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
