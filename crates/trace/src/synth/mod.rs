//! Synthetic workload generation.
//!
//! Builds deterministic branch traces whose statistical structure mirrors
//! the CBP-4 benchmark set the paper evaluates on. See the module docs of
//! [`behavior`], [`builder`] and [`suite`] for the mapping from paper
//! mechanisms to workload knobs.

pub mod behavior;
pub mod builder;
pub mod program;
pub mod suite;
