//! High-level construction of synthetic programs.
//!
//! [`ProgramBuilder`] turns workload *intent* ("add a correlation at
//! dynamic distance ~800 whose filler is a noisy loop") into the static
//! branches and scenes of a [`Program`]. Each `add_*` method corresponds
//! to one statistical branch class from the paper's evaluation; the
//! 40-trace suite in [`crate::synth::suite`] is assembled entirely from
//! these methods.

use crate::rng::Xoshiro256;
use crate::synth::behavior::{BehaviorModel, BranchId, Direction};
use crate::synth::program::{Program, Scene, StaticBranch, Step};

/// What fills the dynamic gap between a deep-correlation source and its
/// consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Filler {
    /// Distinct completely-biased branches: removable by bias-free
    /// filtering alone (the §III-A optimization).
    DistinctBiased,
    /// Many dynamic instances of a handful of non-biased branches inside a
    /// loop: only the recency stack collapses these (the §III-B
    /// optimization).
    LoopedNonBiased,
    /// A function call whose body is mostly biased branches — the "two
    /// correlated branches separated by a function call" motivation of §I.
    CallWithBiased,
    /// A fixed-trip loop over a tiny body of completely biased branches:
    /// many dynamic instances, near-zero history entropy, four static
    /// branches. Collapsible by the recency stack; the loop back-edge
    /// itself is non-biased, so bias filtering alone does not reach
    /// through it.
    DeterministicLoop,
    /// Like [`Filler::DeterministicLoop`], but the loop's trip count
    /// jitters by a couple of iterations per visit (a data-dependent
    /// loop). The length jitter shifts the *alignment* of all older
    /// history in a raw register, scrambling conventional folded-history
    /// indices at every table length — while a recency-stack view still
    /// holds exactly one, unchanged, entry for the header. This is the
    /// filler class on which only the bias-free predictors keep their
    /// reach.
    JitterLoop,
}

/// Incrementally builds a [`Program`].
///
/// # Examples
///
/// ```
/// use bfbp_trace::synth::builder::{Filler, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new(7);
/// b.add_bias_run(20, 4);
/// b.add_deep_correlation(300, Filler::DistinctBiased, 0.02, 3);
/// let program = b.build();
/// let trace = program.emit("demo", 10_000, 1);
/// assert_eq!(trace.len(), 10_000);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    branches: Vec<StaticBranch>,
    scenes: Vec<Scene>,
    rng: Xoshiro256,
    next_pc: u64,
    next_fn_pc: u64,
}

impl ProgramBuilder {
    /// Creates a builder whose structural randomness (directions of bias
    /// branches, trip jitter, …) derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            branches: Vec::new(),
            scenes: Vec::new(),
            rng: Xoshiro256::seed_from_u64(seed ^ 0xB1A5_F4EE),
            next_pc: 0x0040_0000,
            next_fn_pc: 0x0080_0000,
        }
    }

    fn alloc_pc(&mut self) -> u64 {
        let pc = self.next_pc;
        self.next_pc += 0x10;
        pc
    }

    fn alloc_fn_pc(&mut self) -> u64 {
        let pc = self.next_fn_pc;
        self.next_fn_pc += 0x100;
        pc
    }

    /// Adds a static branch with an explicit behaviour; returns its id.
    pub fn add_branch(&mut self, behavior: BehaviorModel) -> BranchId {
        let pc = self.alloc_pc();
        self.branches.push(StaticBranch::new(pc, behavior));
        BranchId::new(self.branches.len() - 1)
    }

    /// Adds a backward (loop back-edge) static branch; returns its id.
    pub fn add_backward_branch(&mut self, behavior: BehaviorModel) -> BranchId {
        let pc = self.alloc_pc();
        self.branches
            .push(StaticBranch::new(pc, behavior).backward());
        BranchId::new(self.branches.len() - 1)
    }

    /// Adds a raw scene.
    pub fn add_scene(&mut self, weight: u32, steps: Vec<Step>) {
        self.scenes.push(Scene::new(steps, weight));
    }

    fn random_bias(&mut self) -> BehaviorModel {
        if self.rng.chance(0.55) {
            BehaviorModel::Bias(Direction::Taken)
        } else {
            BehaviorModel::Bias(Direction::NotTaken)
        }
    }

    /// Adds a straight-line run of `n` completely biased branches
    /// (mixed directions). Raises the trace's Figure 2 bias percentage.
    pub fn add_bias_run(&mut self, n: usize, weight: u32) {
        let steps: Vec<Step> = (0..n)
            .map(|_| {
                let model = self.random_bias();
                Step::Cond(self.add_branch(model))
            })
            .collect();
        self.add_scene(weight, steps);
    }

    /// Adds a run of `n` weakly-biased noisy branches with taken
    /// probability drawn from `p_range`; sets the trace's MPKI floor.
    pub fn add_noise_run(&mut self, n: usize, p_range: (f64, f64), weight: u32) {
        let steps: Vec<Step> = (0..n)
            .map(|_| {
                let p = p_range.0 + self.rng.next_f64() * (p_range.1 - p_range.0);
                Step::Cond(self.add_branch(BehaviorModel::Bernoulli { p_taken: p }))
            })
            .collect();
        self.add_scene(weight, steps);
    }

    /// Adds short-distance pairwise correlations: `n_pairs` random sources
    /// followed (within a few branches) by one consumer per source, each
    /// equal (or inverted-equal) to its own source. Linearly separable, so
    /// every history-based predictor with a short history captures this.
    pub fn add_near_correlation(&mut self, n_pairs: usize, noise: f64, weight: u32) {
        let srcs: Vec<BranchId> = (0..n_pairs.max(1))
            .map(|_| self.add_branch(BehaviorModel::SlowBernoulli { p_flip: 0.3 }))
            .collect();
        let mut steps: Vec<Step> = srcs.iter().map(|&s| Step::Cond(s)).collect();
        // A couple of biased separators, as real code has.
        for _ in 0..2 {
            let model = self.random_bias();
            steps.push(Step::Cond(self.add_branch(model)));
        }
        for &src in &srcs {
            let invert = self.rng_bool();
            let consumer =
                self.add_branch(BehaviorModel::CorrelatedLastOutcome { src, invert, noise });
            steps.push(Step::Cond(consumer));
        }
        self.add_scene(weight, steps);
    }

    /// Adds a short-distance two-source XOR correlation. XOR is *not*
    /// linearly separable, so single-table perceptron predictors cannot
    /// learn it while pattern-matching (TAGE-class) predictors can — the
    /// lever that keeps TAGE slightly ahead of the neural predictors on
    /// average, as in the paper's Figure 8.
    pub fn add_xor_correlation(&mut self, noise: f64, weight: u32) {
        let a = self.add_branch(BehaviorModel::Bernoulli { p_taken: 0.5 });
        let b = self.add_branch(BehaviorModel::Bernoulli { p_taken: 0.5 });
        let sep = self.random_bias();
        let sep = self.add_branch(sep);
        let invert = self.rng_bool();
        let consumer = self.add_branch(BehaviorModel::XorOfLast {
            srcs: vec![a, b],
            invert,
            noise,
        });
        self.add_scene(
            weight,
            vec![
                Step::Cond(a),
                Step::Cond(b),
                Step::Cond(sep),
                Step::Cond(consumer),
            ],
        );
    }

    fn rng_bool(&mut self) -> bool {
        self.rng.chance(0.5)
    }

    /// Adds a single deep correlation: a source branch, `distance`
    /// dynamic filler branches of the given [`Filler`] class, then one
    /// consumer correlated with the source. Equivalent to
    /// [`ProgramBuilder::add_deep_block`] with one consumer.
    pub fn add_deep_correlation(
        &mut self,
        distance: usize,
        filler: Filler,
        noise: f64,
        weight: u32,
    ) {
        self.add_deep_block(distance, filler, 1, noise, 0, 0, weight);
    }

    /// Appends a deterministic-loop filler of roughly `distance` dynamic
    /// branches to `steps` (shared by several scene constructors).
    fn push_deterministic_loop(&mut self, distance: usize, steps: &mut Vec<Step>) {
        let body_static = 3usize;
        let per_iter = body_static + 1;
        let trips = ((distance / per_iter).max(2)) as u32;
        let header = self.add_backward_branch(BehaviorModel::Loop { trip: trips + 1 });
        let body: Vec<Step> = (0..body_static)
            .map(|_| {
                let model = self.random_bias();
                Step::Cond(self.add_branch(model))
            })
            .collect();
        steps.push(Step::Loop {
            header,
            body,
            max_iters: trips + 2,
        });
    }

    /// Emits `len` records by cycling a shared pool of biased branches:
    /// deterministic, biased (so bias filtering erases it), and with a
    /// small static footprint.
    fn push_bias_pool(&mut self, pool: &[BranchId], len: usize, steps: &mut Vec<Step>) {
        for k in 0..len {
            steps.push(Step::Cond(pool[k % pool.len()]));
        }
    }

    fn new_bias_pool(&mut self, size: usize) -> Vec<BranchId> {
        (0..size.max(1))
            .map(|_| {
                let model = self.random_bias();
                self.add_branch(model)
            })
            .collect()
    }

    /// Appends `len` filler records of the given class to `steps`,
    /// reusing `pool` for the biased classes.
    fn push_filler(
        &mut self,
        filler: Filler,
        len: usize,
        pool: &[BranchId],
        steps: &mut Vec<Step>,
    ) {
        match filler {
            Filler::DistinctBiased | Filler::CallWithBiased => {
                self.push_bias_pool(pool, len, steps)
            }
            Filler::DeterministicLoop => self.push_deterministic_loop(len, steps),
            Filler::JitterLoop => {
                let body_static = 3usize;
                let per_iter = body_static + 1;
                let trips = ((len / per_iter).max(3)) as u32;
                let header = self.add_backward_branch(BehaviorModel::LoopVar {
                    trip_lo: trips.saturating_sub(2).max(1) + 1,
                    trip_hi: trips + 3,
                });
                let body: Vec<Step> = (0..body_static)
                    .map(|_| {
                        let model = self.random_bias();
                        Step::Cond(self.add_branch(model))
                    })
                    .collect();
                steps.push(Step::Loop {
                    header,
                    body,
                    max_iters: trips + 4,
                });
            }
            Filler::LoopedNonBiased => {
                let body_static = 3usize;
                let per_iter = body_static + 1;
                let trips = ((len / per_iter).max(2)) as u32;
                let header = self.add_backward_branch(BehaviorModel::Loop { trip: trips + 1 });
                let body: Vec<Step> = (0..body_static)
                    .map(|_| {
                        // Mostly-taken, but genuinely non-biased: the RS is
                        // the only mechanism that collapses these.
                        let p = 0.88 + self.rng.next_f64() * 0.08;
                        Step::Cond(self.add_branch(BehaviorModel::Bernoulli { p_taken: p }))
                    })
                    .collect();
                steps.push(Step::Loop {
                    header,
                    body,
                    max_iters: trips + 2,
                });
            }
        }
    }

    /// Adds a deep-correlation *block*: a warm-up of `warmup` dynamic
    /// filler branches, a 50/50 source, `distance` dynamic filler
    /// branches of the given [`Filler`] class, then `consumers` consumer
    /// branches -- every one correlated with the source -- each separated
    /// from the previous by `gap` more filler branches.
    ///
    /// Three properties are engineered here:
    ///
    /// * the warm-up keeps the history *older* than the source
    ///   low-entropy, so an unfiltered geometric-history predictor whose
    ///   table length exceeds `distance` (and swallows part of the
    ///   warm-up) can still learn the first consumer;
    /// * the inter-consumer `gap` exceeds a short unfiltered history but
    ///   not a long one, so a consumer cannot be inferred from its
    ///   neighbour without either deep unfiltered reach or filtering --
    ///   without the gap, every consumer after the first would be
    ///   trivially predictable from the branch two records earlier;
    /// * the gap filler has the same class as the main filler, so the
    ///   mechanism needed to reach *through* it (bias filtering alone, or
    ///   the recency stack) matches the scene's intent.
    #[allow(clippy::too_many_arguments)]
    pub fn add_deep_block(
        &mut self,
        distance: usize,
        filler: Filler,
        consumers: usize,
        noise: f64,
        warmup: usize,
        gap: usize,
        weight: u32,
    ) {
        let pool = match filler {
            Filler::DistinctBiased | Filler::CallWithBiased => self.new_bias_pool(40),
            _ => Vec::new(),
        };
        let mut steps = Vec::new();
        if warmup > 0 {
            self.push_filler(filler, warmup, &pool, &mut steps);
        }
        let src = self.add_branch(BehaviorModel::SlowBernoulli { p_flip: 0.35 });
        steps.push(Step::Cond(src));
        if let Filler::CallWithBiased = filler {
            let site = self.alloc_fn_pc();
            let entry = self.alloc_fn_pc();
            steps.push(Step::Call {
                pc: site,
                target: entry,
            });
            self.push_filler(filler, distance, &pool, &mut steps);
            steps.push(Step::Return {
                pc: entry + 0x80,
                target: site + 4,
            });
        } else {
            self.push_filler(filler, distance, &pool, &mut steps);
        }
        for c in 0..consumers.max(1) {
            if c > 0 && gap > 0 {
                self.push_filler(filler, gap, &pool, &mut steps);
            }
            let invert = self.rng_bool();
            let consumer =
                self.add_branch(BehaviorModel::CorrelatedLastOutcome { src, invert, noise });
            steps.push(Step::Cond(consumer));
        }
        self.add_scene(weight, steps);
    }

    /// Adds a loop whose body branches follow local (self-history)
    /// patterns of the given `period`. Because the instances are adjacent
    /// in the raw global history, an *unfiltered* history of roughly
    /// `2 × period × (n_branches + 1)` bits predicts them — while any
    /// recency-stack-managed history collapses each branch to a single
    /// entry and loses the pattern. This is the §VI-D failure mode of
    /// BF-TAGE on SPEC07/FP2.
    pub fn add_local_pattern_loop(
        &mut self,
        period: usize,
        n_branches: usize,
        sweeps: u32,
        weight: u32,
    ) {
        let period = period.max(2);
        let trip = (period as u32) * sweeps.max(1);
        let header = self.add_backward_branch(BehaviorModel::Loop { trip: trip + 1 });
        let body: Vec<Step> = (0..n_branches.max(1))
            .map(|_| {
                let mut pattern: Vec<bool> = (0..period).map(|_| self.rng.chance(0.5)).collect();
                if pattern.iter().all(|&x| x) {
                    pattern[0] = false;
                }
                if pattern.iter().all(|&x| !x) {
                    pattern[0] = true;
                }
                Step::Cond(self.add_branch(BehaviorModel::LocalPattern { pattern }))
            })
            .collect();
        self.add_scene(
            weight,
            vec![Step::Loop {
                header,
                body,
                max_iters: trip + 2,
            }],
        );
    }

    /// Adds a loop kernel with a constant trip count and a small body of
    /// biased branches — the loop-count predictor's target class.
    pub fn add_loop_kernel(&mut self, trip: u32, body_biased: usize, weight: u32) {
        let header = self.add_backward_branch(BehaviorModel::Loop { trip: trip.max(2) });
        let body: Vec<Step> = (0..body_biased)
            .map(|_| {
                let model = self.random_bias();
                Step::Cond(self.add_branch(model))
            })
            .collect();
        self.add_scene(
            weight,
            vec![Step::Loop {
                header,
                body,
                max_iters: trip.max(2) + 1,
            }],
        );
    }

    /// Adds `n` branches that follow fixed local (self-history) patterns
    /// of the given period — the class where recency-stack filtering
    /// *hurts* (§VI-D). Patterns are random but fixed per branch.
    pub fn add_local_pattern_run(&mut self, n: usize, period: usize, weight: u32) {
        let period = period.max(2);
        let steps: Vec<Step> = (0..n)
            .map(|_| {
                // Random non-constant pattern.
                let mut pattern: Vec<bool> = (0..period).map(|_| self.rng.chance(0.5)).collect();
                if pattern.iter().all(|&b| b) {
                    pattern[0] = false;
                }
                if pattern.iter().all(|&b| !b) {
                    pattern[0] = true;
                }
                Step::Cond(self.add_branch(BehaviorModel::LocalPattern { pattern }))
            })
            .collect();
        self.add_scene(weight, steps);
    }

    /// Adds a pool of `n` branches that are biased within a phase but flip
    /// direction every `period` dynamic branches — stressing dynamic bias
    /// detection exactly as the paper's SERVER traces do (§VI-D).
    pub fn add_phase_pool(&mut self, n: usize, period: u64, weight: u32) {
        let steps: Vec<Step> = (0..n)
            .map(|_| {
                let base = if self.rng_bool() {
                    Direction::Taken
                } else {
                    Direction::NotTaken
                };
                let jitter = self.rng.below(period.max(2) / 2 + 1);
                Step::Cond(self.add_branch(BehaviorModel::PhaseFlip {
                    period: period + jitter,
                    base,
                }))
            })
            .collect();
        self.add_scene(weight, steps);
    }

    /// Adds the Figure 4 positional-history pattern: a guard branch, then
    /// a loop of `modulus` iterations whose probe is taken only at one hot
    /// iteration and only when the guard was taken.
    pub fn add_positional_loop(&mut self, modulus: u32, weight: u32) {
        let modulus = modulus.max(3);
        let guard = self.add_branch(BehaviorModel::SlowBernoulli { p_flip: 0.3 });
        // Header runs the body exactly `modulus` times so the probe's
        // occurrence counter stays phase-aligned with the sweep.
        let header = self.add_backward_branch(BehaviorModel::Loop { trip: modulus + 1 });
        let hot = self.rng.below(u64::from(modulus)) as u32;
        let probe = self.add_branch(BehaviorModel::PositionalProbe {
            guard,
            modulus,
            hot,
        });
        self.add_scene(
            weight,
            vec![
                Step::Cond(guard),
                Step::Loop {
                    header,
                    body: vec![Step::Cond(probe)],
                    max_iters: modulus + 2,
                },
            ],
        );
    }

    /// Number of static branches added so far.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if the builder produced an invalid program (an internal
    /// bug — the `add_*` methods maintain validity) or if no scene was
    /// added.
    pub fn build(self) -> Program {
        Program::new(self.branches, self.scenes).expect("builder produced invalid program")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;
    use crate::stats::BiasProfile;

    #[test]
    fn bias_run_produces_biased_branches() {
        let mut b = ProgramBuilder::new(1);
        b.add_bias_run(30, 1);
        let trace = b.build().emit("t", 5000, 9);
        let profile = BiasProfile::measure(&trace);
        assert_eq!(profile.static_biased_percent(), 100.0);
    }

    #[test]
    fn noise_run_is_non_biased() {
        let mut b = ProgramBuilder::new(1);
        b.add_noise_run(10, (0.4, 0.6), 1);
        let trace = b.build().emit("t", 5000, 9);
        let profile = BiasProfile::measure(&trace);
        assert_eq!(profile.static_biased(), 0);
    }

    #[test]
    fn deep_correlation_distance_is_respected() {
        let mut b = ProgramBuilder::new(1);
        b.add_deep_correlation(200, Filler::DistinctBiased, 0.0, 1);
        let program = b.build();
        let trace = program.emit("t", 1005, 5);
        // Scene layout: 40-branch bias pool cycled for 200 records after
        // the source; the consumer follows at offset 201.
        let records = trace.records();
        let play_len = 202;
        let src_pc = records[0].pc;
        let cons_pc = records[201].pc;
        assert_ne!(src_pc, cons_pc);
        // Filler reuses the pool: records 1 and 41 are the same branch.
        assert_eq!(records[1].pc, records[41].pc);
        // Consumer tracks source exactly (noise 0): inverted or not,
        // consistently.
        let mut i = 0;
        let first_agrees = records[201].taken == records[0].taken;
        while i + play_len <= records.len() {
            assert_eq!(records[i].pc, src_pc);
            assert_eq!(records[i + 201].pc, cons_pc);
            assert_eq!(records[i + 201].taken == records[i].taken, first_agrees);
            i += play_len;
        }
    }

    #[test]
    fn looped_filler_has_small_static_footprint() {
        let mut b = ProgramBuilder::new(1);
        let before = b.branch_count();
        b.add_deep_correlation(800, Filler::LoopedNonBiased, 0.0, 1);
        // src + header + 3 body + consumer = 6 static branches.
        assert_eq!(b.branch_count() - before, 6);
        // And the dynamic gap is ~800.
        let trace = b.build().emit("t", 2000, 3);
        let records = trace.records();
        let consumer_pc = records.iter().map(|r| r.pc).max().unwrap();
        let first_consumer = records.iter().position(|r| r.pc == consumer_pc).unwrap();
        assert!(
            (600..=1100).contains(&first_consumer),
            "consumer at {first_consumer}"
        );
    }

    #[test]
    fn call_filler_emits_call_and_return() {
        let mut b = ProgramBuilder::new(1);
        b.add_deep_correlation(50, Filler::CallWithBiased, 0.0, 1);
        let trace = b.build().emit("t", 200, 3);
        assert!(trace.iter().any(|r| r.kind == BranchKind::Call));
        assert!(trace.iter().any(|r| r.kind == BranchKind::Return));
    }

    #[test]
    fn loop_kernel_trip_count_is_constant() {
        let mut b = ProgramBuilder::new(1);
        b.add_loop_kernel(7, 2, 1);
        let trace = b.build().emit("t", 3000, 3);
        let header_pc = trace.records()[0].pc;
        let outcomes: Vec<bool> = trace
            .iter()
            .filter(|r| r.pc == header_pc)
            .map(|r| r.taken)
            .collect();
        for chunk in outcomes.chunks_exact(7) {
            assert_eq!(chunk.iter().filter(|&&t| t).count(), 6);
            assert!(!chunk[6]);
        }
    }

    #[test]
    fn local_patterns_are_periodic() {
        let mut b = ProgramBuilder::new(3);
        b.add_local_pattern_run(1, 5, 1);
        let trace = b.build().emit("t", 500, 3);
        let pc = trace.records()[0].pc;
        let outs: Vec<bool> = trace
            .iter()
            .filter(|r| r.pc == pc)
            .map(|r| r.taken)
            .collect();
        for i in 5..outs.len() {
            assert_eq!(outs[i], outs[i - 5]);
        }
        // Not constant.
        assert!(outs[..5].iter().any(|&o| o) && outs[..5].iter().any(|&o| !o));
    }

    #[test]
    fn phase_pool_flips_over_time() {
        let mut b = ProgramBuilder::new(3);
        b.add_phase_pool(4, 500, 1);
        let trace = b.build().emit("t", 20_000, 3);
        let profile = BiasProfile::measure(&trace);
        // Phase branches flip, so none is completely biased over the run.
        assert_eq!(profile.static_biased(), 0);
    }

    #[test]
    fn positional_probe_stays_aligned() {
        let mut b = ProgramBuilder::new(3);
        b.add_positional_loop(8, 1);
        let program = b.build();
        let trace = program.emit("t", 5000, 3);
        // Per scene: guard + (8 body probes + 9 header evals) = 18 records.
        // Probe takenness must depend only on guard: count probe-taken per
        // sweep is exactly 1 when guard taken, 0 otherwise.
        let records = trace.records();
        let probe_pc = records.iter().take(18).map(|r| r.pc).max().unwrap();
        let mut i = 0;
        while i + 18 <= records.len() {
            let guard_taken = records[i].taken;
            let fires = records[i..i + 18]
                .iter()
                .filter(|r| r.pc == probe_pc && r.taken)
                .count();
            assert_eq!(fires, usize::from(guard_taken));
            i += 18;
        }
    }

    #[test]
    fn builder_is_deterministic_per_seed() {
        let build = |seed| {
            let mut b = ProgramBuilder::new(seed);
            b.add_bias_run(5, 1);
            b.add_near_correlation(3, 0.01, 2);
            b.build().emit("t", 1000, 11)
        };
        assert_eq!(build(5), build(5));
        assert_ne!(build(5), build(6));
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn build_without_scenes_panics() {
        ProgramBuilder::new(0).build();
    }

    #[test]
    fn deep_block_emits_expected_consumer_count() {
        let mut b = ProgramBuilder::new(4);
        b.add_deep_block(100, Filler::DeterministicLoop, 8, 0.0, 50, 0, 1);
        let program = b.build();
        let trace = program.emit("t", 2000, 1);
        // Consumers + separators: 16 records at the tail of each play.
        // Count distinct pcs that appear and verify the consumers follow
        // their source exactly (noise = 0).
        let profile = BiasProfile::measure(&trace);
        // src + 3 loop bodies per loop are non-biased; consumers non-biased
        // unless the random source never flipped.
        assert!(profile.static_conditionals() > 10);
    }

    #[test]
    fn deep_block_deterministic_loop_footprint_is_small() {
        let mut b = ProgramBuilder::new(4);
        let before = b.branch_count();
        b.add_deep_block(1000, Filler::DeterministicLoop, 4, 0.0, 400, 0, 1);
        // 2 loops (warmup + filler) of 4 statics each, src, 4 consumers.
        assert_eq!(b.branch_count() - before, 13);
    }

    #[test]
    fn local_pattern_loop_is_periodic_within_loop() {
        let mut b = ProgramBuilder::new(9);
        b.add_local_pattern_loop(6, 2, 4, 1);
        let program = b.build();
        let trace = program.emit("t", 2000, 2);
        // First record is the loop header; body branches follow.
        let records = trace.records();
        let body_pc = records[1].pc;
        let outs: Vec<bool> = trace
            .iter()
            .filter(|r| r.pc == body_pc)
            .map(|r| r.taken)
            .collect();
        for i in 6..outs.len() {
            assert_eq!(outs[i], outs[i - 6]);
        }
    }

    #[test]
    fn deep_block_consumers_track_source() {
        let mut b = ProgramBuilder::new(12);
        b.add_deep_block(60, Filler::DistinctBiased, 3, 0.0, 0, 10, 1);
        let program = b.build();
        let trace = program.emit("t", 4000, 6);
        let records = trace.records();
        // Scene: src, 60 filler, c0, 10 gap, c1, 10 gap, c2 -> 84 records
        // per play.
        let play_len = 84;
        let src_pc = records[0].pc;
        let consumer_offsets = [61usize, 72, 83];
        let consumer_pcs: Vec<u64> = consumer_offsets.iter().map(|&o| records[o].pc).collect();
        // Consumers are fresh static branches: distinct from each other.
        assert_eq!(
            consumer_pcs
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
        let mut i = 0;
        while i + play_len <= records.len() {
            let src_out = records[i].taken;
            assert_eq!(records[i].pc, src_pc);
            for (k, (&off, &cpc)) in consumer_offsets.iter().zip(&consumer_pcs).enumerate() {
                let r = records[i + off];
                assert_eq!(r.pc, cpc);
                // Either always equal or always inverted relative to src;
                // check consistency against the first play.
                let first = records[consumer_offsets[k]].taken == records[0].taken;
                assert_eq!(r.taken == src_out, first);
            }
            i += play_len;
        }
    }

    #[test]
    fn deep_block_gap_separates_consumers() {
        let mut b = ProgramBuilder::new(5);
        b.add_deep_block(30, Filler::DistinctBiased, 4, 0.0, 20, 50, 1);
        let program = b.build();
        let trace = program.emit("t", 1000, 2);
        // Play: 20 warmup + src + 30 filler + c0 + 3 x (50 gap + c)
        // = 205 records; consumers at offsets 51, 102, 153, 204.
        let records = trace.records();
        let c0 = records[51].pc;
        let c1 = records[102].pc;
        assert_ne!(c0, c1);
        // The second play repeats the same structure.
        assert_eq!(records[205 + 51].pc, c0);
        assert_eq!(records[205 + 102].pc, c1);
    }
}
