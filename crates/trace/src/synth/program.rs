//! Synthetic programs: static branches plus an emission schedule.
//!
//! A [`Program`] is a set of static branches (each with a
//! [`BehaviorModel`]) and a set of weighted [`Scene`]s. Emission picks
//! scenes pseudo-randomly (by weight) and plays their steps, producing a
//! deterministic [`Trace`] for a given seed. Scenes are the unit of
//! *distance control*: a scene that emits a correlation source, then `N`
//! dynamic filler branches, then the correlated consumer guarantees the
//! source sits `N` branches deep in the consumer's global history.

use std::error::Error;
use std::fmt;

use crate::record::{BranchKind, BranchRecord, Trace};
use crate::rng::{SplitMix64, Xoshiro256};
use crate::synth::behavior::{BehaviorModel, BranchId, EvalState};

/// A static conditional branch in a synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticBranch {
    pc: u64,
    behavior: BehaviorModel,
    backward: bool,
}

impl StaticBranch {
    /// Creates a static branch at the given address.
    pub fn new(pc: u64, behavior: BehaviorModel) -> Self {
        Self {
            pc,
            behavior,
            backward: false,
        }
    }

    /// Marks the branch as a backward branch (loop back-edge); its taken
    /// target lies before its own address, as real loop branches do.
    pub fn backward(mut self) -> Self {
        self.backward = true;
        self
    }

    /// The branch's address.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The branch's behaviour model.
    pub fn behavior(&self) -> &BehaviorModel {
        &self.behavior
    }

    fn taken_target(&self) -> u64 {
        if self.backward {
            self.pc.saturating_sub(0x40)
        } else {
            self.pc + 0x40
        }
    }
}

/// One step of a scene.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Emit one execution of a conditional branch.
    Cond(BranchId),
    /// Run a loop: emit the header; while it resolves taken, play the body
    /// and emit the header again. The header's behaviour model decides the
    /// trip count.
    Loop {
        /// The loop back-edge branch.
        header: BranchId,
        /// Steps executed each iteration.
        body: Vec<Step>,
        /// Hard iteration cap guarding against always-taken headers.
        max_iters: u32,
    },
    /// Emit a direct call record.
    Call {
        /// Call-site address.
        pc: u64,
        /// Callee entry address.
        target: u64,
    },
    /// Emit a return record.
    Return {
        /// Return-instruction address.
        pc: u64,
        /// Return target (call site + 4).
        target: u64,
    },
    /// Emit an unconditional direct jump record.
    Jump {
        /// Jump address.
        pc: u64,
        /// Jump target.
        target: u64,
    },
}

/// A weighted sequence of steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    steps: Vec<Step>,
    weight: u32,
}

impl Scene {
    /// Creates a scene with the given selection weight (must be nonzero to
    /// ever be played).
    pub fn new(steps: Vec<Step>, weight: u32) -> Self {
        Self { steps, weight }
    }

    /// The scene's steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The scene's selection weight.
    pub fn weight(&self) -> u32 {
        self.weight
    }
}

/// Validation errors for [`Program::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A behaviour referenced a branch id that does not exist.
    DanglingBranchRef {
        /// The referencing branch.
        branch: usize,
        /// The missing reference.
        referenced: usize,
    },
    /// A scene step referenced a branch id that does not exist.
    DanglingStepRef(usize),
    /// A `Loop` behaviour had a zero trip count.
    ZeroTrip(usize),
    /// A `LocalPattern` behaviour had an empty pattern.
    EmptyPattern(usize),
    /// A `PhaseFlip` behaviour had a zero period.
    ZeroPeriod(usize),
    /// The program has no scenes with nonzero weight.
    NoScenes,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DanglingBranchRef { branch, referenced } => {
                write!(f, "branch {branch} references missing branch {referenced}")
            }
            ProgramError::DanglingStepRef(id) => {
                write!(f, "scene step references missing branch {id}")
            }
            ProgramError::ZeroTrip(id) => write!(f, "branch {id} has zero loop trip"),
            ProgramError::EmptyPattern(id) => write!(f, "branch {id} has empty local pattern"),
            ProgramError::ZeroPeriod(id) => write!(f, "branch {id} has zero phase period"),
            ProgramError::NoScenes => write!(f, "program has no playable scenes"),
        }
    }
}

impl Error for ProgramError {}

/// A validated synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    branches: Vec<StaticBranch>,
    scenes: Vec<Scene>,
    total_weight: u64,
}

impl Program {
    /// Builds and validates a program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if any behaviour references a missing
    /// branch, a loop trip is zero, a local pattern is empty, a phase
    /// period is zero, or no scene has nonzero weight.
    pub fn new(branches: Vec<StaticBranch>, scenes: Vec<Scene>) -> Result<Self, ProgramError> {
        let n = branches.len();
        for (i, b) in branches.iter().enumerate() {
            if let Some(src) = b.behavior.max_src() {
                if src.index() >= n {
                    return Err(ProgramError::DanglingBranchRef {
                        branch: i,
                        referenced: src.index(),
                    });
                }
            }
            match b.behavior() {
                BehaviorModel::Loop { trip } if *trip == 0 => {
                    return Err(ProgramError::ZeroTrip(i))
                }
                BehaviorModel::LocalPattern { pattern } if pattern.is_empty() => {
                    return Err(ProgramError::EmptyPattern(i))
                }
                BehaviorModel::PhaseFlip { period, .. } if *period == 0 => {
                    return Err(ProgramError::ZeroPeriod(i))
                }
                _ => {}
            }
        }
        fn check_steps(steps: &[Step], n: usize) -> Result<(), ProgramError> {
            for step in steps {
                match step {
                    Step::Cond(id) if id.index() >= n => {
                        return Err(ProgramError::DanglingStepRef(id.index()))
                    }
                    Step::Loop { header, body, .. } => {
                        if header.index() >= n {
                            return Err(ProgramError::DanglingStepRef(header.index()));
                        }
                        check_steps(body, n)?;
                    }
                    _ => {}
                }
            }
            Ok(())
        }
        for scene in &scenes {
            check_steps(scene.steps(), n)?;
        }
        let total_weight: u64 = scenes.iter().map(|s| u64::from(s.weight)).sum();
        if total_weight == 0 {
            return Err(ProgramError::NoScenes);
        }
        Ok(Self {
            branches,
            scenes,
            total_weight,
        })
    }

    /// The program's static branches.
    pub fn branches(&self) -> &[StaticBranch] {
        &self.branches
    }

    /// The program's scenes.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }

    /// Creates an infinite record stream for this program.
    pub fn stream(&self, seed: u64) -> ProgramStream<'_> {
        ProgramStream {
            program: self,
            state: StreamState::new(self, seed),
        }
    }

    /// Emits a trace of exactly `n_records` branch records.
    pub fn emit(&self, name: impl Into<String>, n_records: usize, seed: u64) -> Trace {
        let records: Vec<BranchRecord> = self.stream(seed).take(n_records).collect();
        Trace::new(name, records)
    }
}

/// Deterministic per-address non-branch instruction gap in `[2, 8]`.
fn inst_gap(pc: u64) -> u32 {
    (SplitMix64::new(pc).next_u64() % 7) as u32 + 2
}

/// Infinite iterator over a program's branch records.
///
/// Created by [`Program::stream`]. Scenes are selected by weight with a
/// deterministic PRNG, so equal seeds produce identical streams.
#[derive(Debug, Clone)]
pub struct ProgramStream<'p> {
    program: &'p Program,
    state: StreamState,
}

/// Detached iteration state of a program record stream.
///
/// [`ProgramStream`] borrows its [`Program`]; code that must *own* a
/// self-contained stream (the synthetic
/// [`SynthSource`](crate::source::SynthSource), for instance) instead
/// holds a `Program` and a `StreamState` side by side and calls
/// [`StreamState::next_record`]. Both drivers share this one
/// implementation, so a given `(program, seed)` pair yields the same
/// record sequence through either.
///
/// Every `next_record` call must pass the same program the state was
/// created for; mixing programs produces nonsense (and may panic on
/// out-of-range branch ids).
#[derive(Debug, Clone)]
pub struct StreamState {
    state: EvalState,
    rng: Xoshiro256,
    buffer: Vec<BranchRecord>,
    cursor: usize,
    last_scene: Option<usize>,
    burst_left: u32,
}

/// Probability (out of 256) that the next scene repeats the previous one
/// — real programs execute in phases, re-running the same region many
/// times before moving on. Burst length is capped by
/// [`SCENE_BURST_MAX`].
const SCENE_REPEAT_NUM: u64 = 232;
/// Maximum consecutive plays of one scene.
const SCENE_BURST_MAX: u32 = 16;

impl StreamState {
    /// Creates fresh iteration state for `program`, seeded like
    /// [`Program::stream`].
    pub fn new(program: &Program, seed: u64) -> Self {
        Self {
            state: EvalState::new(program.branches.len()),
            rng: Xoshiro256::seed_from_u64(seed),
            buffer: Vec::new(),
            cursor: 0,
            last_scene: None,
            burst_left: 0,
        }
    }

    /// Produces the next record of the (infinite) stream.
    pub fn next_record(&mut self, program: &Program) -> BranchRecord {
        while self.cursor >= self.buffer.len() {
            self.refill(program);
        }
        let record = self.buffer[self.cursor];
        self.cursor += 1;
        record
    }

    fn emit_cond(&mut self, program: &Program, id: BranchId, out: &mut Vec<BranchRecord>) {
        let branch = &program.branches[id.index()];
        let taken = branch.behavior.evaluate(id, &mut self.state, &mut self.rng);
        self.state.commit(id, taken);
        out.push(BranchRecord::cond(
            branch.pc,
            branch.taken_target(),
            taken,
            inst_gap(branch.pc),
        ));
    }

    fn play_steps(&mut self, program: &Program, steps: &[Step], out: &mut Vec<BranchRecord>) {
        for step in steps {
            match step {
                Step::Cond(id) => self.emit_cond(program, *id, out),
                Step::Loop {
                    header,
                    body,
                    max_iters,
                } => {
                    let mut iters = 0u32;
                    loop {
                        let branch = &program.branches[header.index()];
                        let taken =
                            branch
                                .behavior
                                .evaluate(*header, &mut self.state, &mut self.rng);
                        self.state.commit(*header, taken);
                        out.push(BranchRecord::cond(
                            branch.pc,
                            branch.taken_target(),
                            taken,
                            inst_gap(branch.pc),
                        ));
                        iters += 1;
                        if !taken || iters >= *max_iters {
                            break;
                        }
                        self.play_steps(program, body, out);
                    }
                }
                Step::Call { pc, target } => out.push(BranchRecord::uncond(
                    *pc,
                    *target,
                    BranchKind::Call,
                    inst_gap(*pc),
                )),
                Step::Return { pc, target } => out.push(BranchRecord::uncond(
                    *pc,
                    *target,
                    BranchKind::Return,
                    inst_gap(*pc),
                )),
                Step::Jump { pc, target } => out.push(BranchRecord::uncond(
                    *pc,
                    *target,
                    BranchKind::UncondDirect,
                    inst_gap(*pc),
                )),
            }
        }
    }

    fn refill(&mut self, program: &Program) {
        self.buffer.clear();
        self.cursor = 0;
        // Phase behaviour: repeat the previous scene with high
        // probability (bounded burst), else weighted scene selection.
        let scene_index = match self.last_scene {
            Some(prev) if self.burst_left > 0 && self.rng.below(256) < SCENE_REPEAT_NUM => {
                self.burst_left -= 1;
                prev
            }
            _ => {
                let mut pick = self.rng.below(program.total_weight);
                let chosen = program
                    .scenes
                    .iter()
                    .position(|s| {
                        if pick < u64::from(s.weight) {
                            true
                        } else {
                            pick -= u64::from(s.weight);
                            false
                        }
                    })
                    .expect("total_weight > 0 guarantees a pick");
                self.burst_left = SCENE_BURST_MAX - 1;
                chosen
            }
        };
        self.last_scene = Some(scene_index);
        let steps = program.scenes[scene_index].steps.clone();
        let mut out = std::mem::take(&mut self.buffer);
        self.play_steps(program, &steps, &mut out);
        self.buffer = out;
    }
}

impl Iterator for ProgramStream<'_> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.state.next_record(self.program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::behavior::Direction;

    fn simple_program() -> Program {
        let branches = vec![
            StaticBranch::new(0x1000, BehaviorModel::Bias(Direction::Taken)),
            StaticBranch::new(0x2000, BehaviorModel::Loop { trip: 3 }).backward(),
            StaticBranch::new(0x3000, BehaviorModel::Bernoulli { p_taken: 0.5 }),
        ];
        let scenes = vec![Scene::new(
            vec![
                Step::Cond(BranchId::new(0)),
                Step::Loop {
                    header: BranchId::new(1),
                    body: vec![Step::Cond(BranchId::new(2))],
                    max_iters: 100,
                },
            ],
            1,
        )];
        Program::new(branches, scenes).unwrap()
    }

    #[test]
    fn detached_state_matches_borrowed_stream() {
        let p = simple_program();
        let mut state = StreamState::new(&p, 42);
        let borrowed: Vec<BranchRecord> = p.stream(42).take(300).collect();
        let detached: Vec<BranchRecord> = (0..300).map(|_| state.next_record(&p)).collect();
        assert_eq!(borrowed, detached);
    }

    #[test]
    fn emit_is_deterministic() {
        let p = simple_program();
        let a = p.emit("t", 500, 42);
        let b = p.emit("t", 500, 42);
        assert_eq!(a, b);
        let c = p.emit("t", 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn emit_produces_exact_count() {
        let p = simple_program();
        assert_eq!(p.emit("t", 123, 1).len(), 123);
        assert_eq!(p.emit("t", 0, 1).len(), 0);
    }

    #[test]
    fn loop_structure_appears() {
        let p = simple_program();
        let t = p.emit("t", 400, 7);
        // Loop header taken twice then not-taken once, repeatedly.
        let headers: Vec<bool> = t
            .iter()
            .filter(|r| r.pc == 0x2000)
            .map(|r| r.taken)
            .collect();
        assert!(headers.len() > 10);
        for chunk in headers.chunks_exact(3) {
            assert_eq!(chunk, &[true, true, false]);
        }
    }

    #[test]
    fn backward_branch_target_is_backward() {
        let p = simple_program();
        let t = p.emit("t", 100, 7);
        let header = t.iter().find(|r| r.pc == 0x2000).unwrap();
        assert!(header.target < header.pc);
        let fwd = t.iter().find(|r| r.pc == 0x1000).unwrap();
        assert!(fwd.target > fwd.pc);
    }

    #[test]
    fn call_and_return_records() {
        let branches = vec![StaticBranch::new(
            0x1000,
            BehaviorModel::Bias(Direction::Taken),
        )];
        let scenes = vec![Scene::new(
            vec![
                Step::Call {
                    pc: 0x500,
                    target: 0x9000,
                },
                Step::Cond(BranchId::new(0)),
                Step::Return {
                    pc: 0x9100,
                    target: 0x504,
                },
            ],
            1,
        )];
        let p = Program::new(branches, scenes).unwrap();
        let t = p.emit("t", 3, 0);
        assert_eq!(t.records()[0].kind, BranchKind::Call);
        assert_eq!(t.records()[1].kind, BranchKind::CondDirect);
        assert_eq!(t.records()[2].kind, BranchKind::Return);
    }

    #[test]
    fn max_iters_caps_runaway_loops() {
        let branches =
            vec![StaticBranch::new(0x1000, BehaviorModel::Bias(Direction::Taken)).backward()];
        let scenes = vec![Scene::new(
            vec![Step::Loop {
                header: BranchId::new(0),
                body: vec![],
                max_iters: 5,
            }],
            1,
        )];
        let p = Program::new(branches, scenes).unwrap();
        // Must terminate; each scene play emits exactly 5 header records.
        let t = p.emit("t", 12, 0);
        assert_eq!(t.len(), 12);
        assert!(t.iter().all(|r| r.pc == 0x1000 && r.taken));
    }

    #[test]
    fn validation_catches_dangling_behavior_ref() {
        let branches = vec![StaticBranch::new(
            0x10,
            BehaviorModel::CorrelatedLastOutcome {
                src: BranchId::new(5),
                invert: false,
                noise: 0.0,
            },
        )];
        let scenes = vec![Scene::new(vec![Step::Cond(BranchId::new(0))], 1)];
        assert_eq!(
            Program::new(branches, scenes),
            Err(ProgramError::DanglingBranchRef {
                branch: 0,
                referenced: 5
            })
        );
    }

    #[test]
    fn validation_catches_dangling_step_ref() {
        let scenes = vec![Scene::new(vec![Step::Cond(BranchId::new(3))], 1)];
        assert_eq!(
            Program::new(vec![], scenes),
            Err(ProgramError::DanglingStepRef(3))
        );
    }

    #[test]
    fn validation_catches_dangling_loop_body_ref() {
        let branches = vec![StaticBranch::new(0x10, BehaviorModel::Loop { trip: 2 })];
        let scenes = vec![Scene::new(
            vec![Step::Loop {
                header: BranchId::new(0),
                body: vec![Step::Cond(BranchId::new(9))],
                max_iters: 10,
            }],
            1,
        )];
        assert_eq!(
            Program::new(branches, scenes),
            Err(ProgramError::DanglingStepRef(9))
        );
    }

    #[test]
    fn validation_catches_zero_trip_and_empty_pattern() {
        let b1 = vec![StaticBranch::new(0x10, BehaviorModel::Loop { trip: 0 })];
        let s = vec![Scene::new(vec![Step::Cond(BranchId::new(0))], 1)];
        assert_eq!(Program::new(b1, s.clone()), Err(ProgramError::ZeroTrip(0)));

        let b2 = vec![StaticBranch::new(
            0x10,
            BehaviorModel::LocalPattern { pattern: vec![] },
        )];
        assert_eq!(
            Program::new(b2, s.clone()),
            Err(ProgramError::EmptyPattern(0))
        );

        let b3 = vec![StaticBranch::new(
            0x10,
            BehaviorModel::PhaseFlip {
                period: 0,
                base: Direction::Taken,
            },
        )];
        assert_eq!(Program::new(b3, s), Err(ProgramError::ZeroPeriod(0)));
    }

    #[test]
    fn validation_requires_scenes() {
        assert_eq!(Program::new(vec![], vec![]), Err(ProgramError::NoScenes));
        let zero_weight = vec![Scene::new(vec![], 0)];
        assert_eq!(
            Program::new(vec![], zero_weight),
            Err(ProgramError::NoScenes)
        );
    }

    #[test]
    fn inst_gap_in_range_and_deterministic() {
        for pc in [0u64, 1, 0x400_000, u64::MAX] {
            let g = inst_gap(pc);
            assert!((2..=8).contains(&g));
            assert_eq!(g, inst_gap(pc));
        }
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            ProgramError::DanglingBranchRef {
                branch: 1,
                referenced: 2,
            },
            ProgramError::DanglingStepRef(3),
            ProgramError::ZeroTrip(0),
            ProgramError::EmptyPattern(0),
            ProgramError::ZeroPeriod(0),
            ProgramError::NoScenes,
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
        }
    }
}
