//! Branch behaviour models for the synthetic workload engine.
//!
//! Each static branch in a synthetic program carries a [`BehaviorModel`]
//! describing how its outcome is produced. The models map one-to-one onto
//! the statistical branch classes the paper's mechanisms target:
//!
//! * [`BehaviorModel::Bias`] — *completely biased* branches, the class the
//!   BST detects and the bias-free filter removes from history (§III-A).
//! * [`BehaviorModel::Loop`] — constant-trip loop branches, the target of
//!   the loop-count predictor (§IV-B2).
//! * [`BehaviorModel::CorrelatedLastOutcome`] — a branch whose direction
//!   equals the *most recent outcome* of another branch that executed far
//!   earlier; this is the deep-correlation class that motivates the whole
//!   paper (§I, §II).
//! * [`BehaviorModel::XorOfLast`] — multi-way correlation with several
//!   recent branches (classic perceptron fodder).
//! * [`BehaviorModel::LocalPattern`] — self-history periodic branches, the
//!   class on which recency-stack filtering *loses* (§VI-D, SPEC07/FP2).
//! * [`BehaviorModel::PhaseFlip`] — bias direction that flips with program
//!   phase, stressing dynamic (runtime) bias detection (§VI-D, SERV).
//! * [`BehaviorModel::PositionalProbe`] — the Figure 4 `array[p]` pattern
//!   that motivates positional history (§III-C).

use crate::rng::Xoshiro256;

/// Identifier of a static branch within a [`super::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchId(usize);

impl BranchId {
    /// Creates an id from a raw index. Indexes are assigned densely by the
    /// program builder.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A branch direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Branch is taken.
    Taken,
    /// Branch falls through.
    NotTaken,
}

impl Direction {
    /// The direction as a boolean (`true` = taken).
    pub fn as_bool(self) -> bool {
        self == Direction::Taken
    }

    /// The opposite direction.
    pub fn flipped(self) -> Self {
        match self {
            Direction::Taken => Direction::NotTaken,
            Direction::NotTaken => Direction::Taken,
        }
    }
}

impl From<bool> for Direction {
    fn from(taken: bool) -> Self {
        if taken {
            Direction::Taken
        } else {
            Direction::NotTaken
        }
    }
}

/// How a static branch resolves each time it executes.
#[derive(Debug, Clone, PartialEq)]
pub enum BehaviorModel {
    /// Resolves the same direction every single execution.
    Bias(Direction),
    /// Loop back-edge: taken `trip - 1` consecutive times, then not taken
    /// once (one full loop execution per `trip` occurrences).
    Loop {
        /// Number of iterations per loop visit; must be at least 1.
        trip: u32,
    },
    /// Loop back-edge with a data-dependent trip count: each loop visit
    /// draws a fresh trip uniformly from `[trip_lo, trip_hi]`. The jitter
    /// shifts the *alignment* of everything beyond the loop in a raw
    /// history register — scrambling conventional folded-history indices
    /// — while a recency stack still sees exactly one entry for the
    /// header, unchanged.
    LoopVar {
        /// Minimum iterations per visit (at least 1).
        trip_lo: u32,
        /// Maximum iterations per visit.
        trip_hi: u32,
    },
    /// Independently random with the given taken probability.
    Bernoulli {
        /// Probability of resolving taken.
        p_taken: f64,
    },
    /// A slowly varying random branch: repeats its own previous outcome,
    /// flipping with probability `p_flip` per execution. Real programs'
    /// non-biased branches are persistent like this (a condition tends to
    /// hold for a stretch of iterations), which is what makes histories
    /// containing them re-occur — the cross-correlation property §V-B2 of
    /// the paper leans on.
    SlowBernoulli {
        /// Probability that the outcome differs from the previous one.
        p_flip: f64,
    },
    /// Equals the most recent outcome of `src` (optionally inverted),
    /// flipped with probability `noise`.
    CorrelatedLastOutcome {
        /// The source branch this branch correlates with.
        src: BranchId,
        /// Whether the correlation is inverted.
        invert: bool,
        /// Probability that the deterministic outcome is flipped.
        noise: f64,
    },
    /// XOR of the most recent outcomes of `srcs` (optionally inverted),
    /// flipped with probability `noise`.
    XorOfLast {
        /// Source branches.
        srcs: Vec<BranchId>,
        /// Whether the XOR is inverted.
        invert: bool,
        /// Probability that the deterministic outcome is flipped.
        noise: f64,
    },
    /// Cycles through a fixed local outcome pattern.
    LocalPattern {
        /// The repeating outcome sequence; must be non-empty.
        pattern: Vec<bool>,
    },
    /// Completely biased *within a phase*, direction flipping every
    /// `period` global dynamic conditional branches.
    PhaseFlip {
        /// Phase length in dynamic conditional branches; must be nonzero.
        period: u64,
        /// Direction during even phases.
        base: Direction,
    },
    /// Figure 4's `if (array[i] == 1)` probe: taken only on the iteration
    /// where `occurrence % modulus == hot` *and* the guard's last outcome
    /// was taken.
    PositionalProbe {
        /// The guarding branch (`Branch A` in Figure 4).
        guard: BranchId,
        /// Loop length (occurrences per sweep).
        modulus: u32,
        /// The single hot index within the sweep.
        hot: u32,
    },
}

impl BehaviorModel {
    /// Whether this model produces a completely biased branch by
    /// construction (useful as ground truth in tests).
    pub fn is_statically_biased(&self) -> bool {
        matches!(self, BehaviorModel::Bias(_))
    }

    /// Largest referenced source id, if any — used by program validation.
    pub fn max_src(&self) -> Option<BranchId> {
        match self {
            BehaviorModel::CorrelatedLastOutcome { src, .. } => Some(*src),
            BehaviorModel::XorOfLast { srcs, .. } => srcs.iter().copied().max(),
            BehaviorModel::PositionalProbe { guard, .. } => Some(*guard),
            _ => None,
        }
    }
}

/// Mutable evaluation state shared by all branches of a program while a
/// trace is being emitted.
#[derive(Debug, Clone)]
pub struct EvalState {
    last_outcome: Vec<bool>,
    occurrences: Vec<u64>,
    aux: Vec<u32>,
    global_conditionals: u64,
}

impl EvalState {
    /// Creates state for a program with `n_branches` static branches.
    pub fn new(n_branches: usize) -> Self {
        Self {
            last_outcome: vec![false; n_branches],
            occurrences: vec![0; n_branches],
            aux: vec![0; n_branches],
            global_conditionals: 0,
        }
    }

    /// Most recent outcome of `id` (`false` before its first execution).
    pub fn last_outcome(&self, id: BranchId) -> bool {
        self.last_outcome[id.index()]
    }

    /// How many times `id` has executed.
    pub fn occurrences(&self, id: BranchId) -> u64 {
        self.occurrences[id.index()]
    }

    /// Total dynamic conditional branches executed so far.
    pub fn global_conditionals(&self) -> u64 {
        self.global_conditionals
    }

    /// Records the outcome of an execution of `id`.
    pub fn commit(&mut self, id: BranchId, taken: bool) {
        self.last_outcome[id.index()] = taken;
        self.occurrences[id.index()] += 1;
        self.global_conditionals += 1;
    }
}

impl BehaviorModel {
    /// Computes the next outcome of a branch with this model, *without*
    /// committing it to `state` (the emitter commits after recording).
    ///
    /// # Panics
    ///
    /// Panics if a `Loop` trip count is zero or a `LocalPattern` is empty
    /// (both rejected at program-build time).
    pub fn evaluate(&self, id: BranchId, state: &mut EvalState, rng: &mut Xoshiro256) -> bool {
        match self {
            BehaviorModel::Bias(dir) => dir.as_bool(),
            BehaviorModel::Loop { trip } => {
                assert!(*trip >= 1, "loop trip must be >= 1");
                let occ = state.occurrences(id);
                (occ % u64::from(*trip)) != u64::from(*trip - 1)
            }
            BehaviorModel::LoopVar { trip_lo, trip_hi } => {
                assert!(*trip_lo >= 1 && trip_lo <= trip_hi, "bad trip range");
                if state.aux[id.index()] == 0 {
                    state.aux[id.index()] =
                        rng.range_inclusive(u64::from(*trip_lo), u64::from(*trip_hi)) as u32;
                }
                state.aux[id.index()] -= 1;
                state.aux[id.index()] > 0
            }
            BehaviorModel::Bernoulli { p_taken } => rng.chance(*p_taken),
            BehaviorModel::SlowBernoulli { p_flip } => state.last_outcome(id) ^ rng.chance(*p_flip),
            BehaviorModel::CorrelatedLastOutcome { src, invert, noise } => {
                let mut out = state.last_outcome(*src) ^ invert;
                if *noise > 0.0 && rng.chance(*noise) {
                    out = !out;
                }
                out
            }
            BehaviorModel::XorOfLast {
                srcs,
                invert,
                noise,
            } => {
                let mut out = srcs
                    .iter()
                    .fold(false, |acc, s| acc ^ state.last_outcome(*s))
                    ^ invert;
                if *noise > 0.0 && rng.chance(*noise) {
                    out = !out;
                }
                out
            }
            BehaviorModel::LocalPattern { pattern } => {
                assert!(!pattern.is_empty(), "local pattern must be non-empty");
                pattern[(state.occurrences(id) % pattern.len() as u64) as usize]
            }
            BehaviorModel::PhaseFlip { period, base } => {
                assert!(*period > 0, "phase period must be non-zero");
                let phase = state.global_conditionals() / period;
                base.as_bool() ^ (phase % 2 == 1)
            }
            BehaviorModel::PositionalProbe {
                guard,
                modulus,
                hot,
            } => {
                let iter = (state.occurrences(id) % u64::from((*modulus).max(1))) as u32;
                iter == *hot && state.last_outcome(*guard)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(77)
    }

    #[test]
    fn direction_conversions() {
        assert!(Direction::Taken.as_bool());
        assert!(!Direction::NotTaken.as_bool());
        assert_eq!(Direction::Taken.flipped(), Direction::NotTaken);
        assert_eq!(Direction::from(true), Direction::Taken);
        assert_eq!(Direction::from(false), Direction::NotTaken);
    }

    #[test]
    fn bias_is_constant() {
        let model = BehaviorModel::Bias(Direction::Taken);
        let mut state = EvalState::new(1);
        let mut r = rng();
        for _ in 0..100 {
            assert!(model.evaluate(BranchId::new(0), &mut state, &mut r));
        }
    }

    #[test]
    fn loop_takes_trip_minus_one_times() {
        let model = BehaviorModel::Loop { trip: 4 };
        let id = BranchId::new(0);
        let mut state = EvalState::new(1);
        let mut r = rng();
        let outcomes: Vec<bool> = (0..8)
            .map(|_| {
                let out = model.evaluate(id, &mut state, &mut r);
                state.commit(id, out);
                out
            })
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn trip_one_loop_never_taken() {
        let model = BehaviorModel::Loop { trip: 1 };
        let id = BranchId::new(0);
        let mut state = EvalState::new(1);
        let mut r = rng();
        for _ in 0..5 {
            let out = model.evaluate(id, &mut state, &mut r);
            assert!(!out);
            state.commit(id, out);
        }
    }

    #[test]
    fn bernoulli_matches_probability() {
        let model = BehaviorModel::Bernoulli { p_taken: 0.8 };
        let mut state = EvalState::new(1);
        let mut r = rng();
        let taken = (0..50_000)
            .filter(|_| model.evaluate(BranchId::new(0), &mut state, &mut r))
            .count();
        let frac = taken as f64 / 50_000.0;
        assert!((frac - 0.8).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn slow_bernoulli_persists() {
        let model = BehaviorModel::SlowBernoulli { p_flip: 0.1 };
        let id = BranchId::new(0);
        let mut state = EvalState::new(1);
        let mut r = rng();
        let mut flips = 0;
        let mut prev = state.last_outcome(id);
        for _ in 0..20_000 {
            let out = model.evaluate(id, &mut state, &mut r);
            if out != prev {
                flips += 1;
            }
            prev = out;
            state.commit(id, out);
        }
        let rate = flips as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    fn correlation_tracks_source() {
        let src = BranchId::new(0);
        let dst = BranchId::new(1);
        let model = BehaviorModel::CorrelatedLastOutcome {
            src,
            invert: false,
            noise: 0.0,
        };
        let mut state = EvalState::new(2);
        let mut r = rng();
        for &src_out in &[true, false, true, true, false] {
            state.commit(src, src_out);
            assert_eq!(model.evaluate(dst, &mut state, &mut r), src_out);
        }
    }

    #[test]
    fn inverted_correlation() {
        let src = BranchId::new(0);
        let model = BehaviorModel::CorrelatedLastOutcome {
            src,
            invert: true,
            noise: 0.0,
        };
        let mut state = EvalState::new(2);
        let mut r = rng();
        state.commit(src, true);
        assert!(!model.evaluate(BranchId::new(1), &mut state, &mut r));
    }

    #[test]
    fn correlation_noise_flips_sometimes() {
        let src = BranchId::new(0);
        let model = BehaviorModel::CorrelatedLastOutcome {
            src,
            invert: false,
            noise: 0.25,
        };
        let mut state = EvalState::new(2);
        state.commit(src, true);
        let mut r = rng();
        let flipped = (0..40_000)
            .filter(|_| !model.evaluate(BranchId::new(1), &mut state, &mut r))
            .count();
        let frac = flipped as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn xor_of_last() {
        let a = BranchId::new(0);
        let b = BranchId::new(1);
        let model = BehaviorModel::XorOfLast {
            srcs: vec![a, b],
            invert: false,
            noise: 0.0,
        };
        let mut state = EvalState::new(3);
        let mut r = rng();
        for &(x, y) in &[(false, false), (true, false), (false, true), (true, true)] {
            state.commit(a, x);
            state.commit(b, y);
            assert_eq!(model.evaluate(BranchId::new(2), &mut state, &mut r), x ^ y);
        }
    }

    #[test]
    fn local_pattern_cycles() {
        let model = BehaviorModel::LocalPattern {
            pattern: vec![true, true, false],
        };
        let id = BranchId::new(0);
        let mut state = EvalState::new(1);
        let mut r = rng();
        let outs: Vec<bool> = (0..6)
            .map(|_| {
                let o = model.evaluate(id, &mut state, &mut r);
                state.commit(id, o);
                o
            })
            .collect();
        assert_eq!(outs, vec![true, true, false, true, true, false]);
    }

    #[test]
    fn phase_flip_changes_direction() {
        let model = BehaviorModel::PhaseFlip {
            period: 3,
            base: Direction::Taken,
        };
        let id = BranchId::new(0);
        let mut state = EvalState::new(1);
        let mut r = rng();
        let mut outs = Vec::new();
        for _ in 0..9 {
            let o = model.evaluate(id, &mut state, &mut r);
            outs.push(o);
            state.commit(id, o);
        }
        assert_eq!(
            outs,
            vec![true, true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn positional_probe_matches_fig4() {
        let guard = BranchId::new(0);
        let probe = BranchId::new(1);
        let model = BehaviorModel::PositionalProbe {
            guard,
            modulus: 5,
            hot: 2,
        };
        let mut state = EvalState::new(2);
        let mut r = rng();
        // Guard taken: probe fires exactly at iteration 2 of each sweep.
        state.commit(guard, true);
        let mut outs = Vec::new();
        for _ in 0..10 {
            let o = model.evaluate(probe, &mut state, &mut r);
            outs.push(o);
            state.commit(probe, o);
        }
        assert_eq!(
            outs,
            vec![false, false, true, false, false, false, false, true, false, false]
        );
        // Guard not taken: probe never fires.
        state.commit(guard, false);
        for _ in 0..5 {
            let o = model.evaluate(probe, &mut state, &mut r);
            assert!(!o);
            state.commit(probe, o);
        }
    }

    #[test]
    fn max_src_reports_dependencies() {
        assert_eq!(BehaviorModel::Bias(Direction::Taken).max_src(), None);
        assert_eq!(
            BehaviorModel::CorrelatedLastOutcome {
                src: BranchId::new(7),
                invert: false,
                noise: 0.0
            }
            .max_src(),
            Some(BranchId::new(7))
        );
        assert_eq!(
            BehaviorModel::XorOfLast {
                srcs: vec![BranchId::new(1), BranchId::new(9), BranchId::new(4)],
                invert: false,
                noise: 0.0
            }
            .max_src(),
            Some(BranchId::new(9))
        );
    }

    #[test]
    fn eval_state_tracks_commits() {
        let mut state = EvalState::new(2);
        let id = BranchId::new(1);
        assert_eq!(state.occurrences(id), 0);
        assert!(!state.last_outcome(id));
        state.commit(id, true);
        assert_eq!(state.occurrences(id), 1);
        assert!(state.last_outcome(id));
        assert_eq!(state.global_conditionals(), 1);
    }
}
