//! The 40-trace evaluation suite, mirroring the CBP-4 benchmark set used
//! by the paper: 20 long `SPEC` traces and 5 short traces in each of the
//! `FP`, `INT`, `MM` and `SERV` categories.
//!
//! The real CBP-4 traces are proprietary; each [`TraceSpec`] here is a
//! synthetic stand-in whose *statistical character* matches what the paper
//! reports for that trace (biased-branch fraction, presence and depth of
//! long-distance correlations, loop structure, local-history branches,
//! phase behaviour). See `DESIGN.md` §1 for the substitution argument and
//! §5 for the knob-to-mechanism mapping. Notable per-trace choices:
//!
//! * `SPEC02/06/09` — large biased fractions (Figure 2) and deep
//!   correlations behind distinct-biased filler: the §III-A filter's
//!   best case.
//! * `SPEC03/14/18` — few biased branches, deep correlations behind loop
//!   filler: the recency stack's best case (Figure 9 discussion).
//! * `SPEC07`, `FP2` — local-pattern loops where recency-stack filtering
//!   *loses* useful context (§VI-D).
//! * `SERV1..5` — huge static footprints and phase flips that stress
//!   dynamic bias detection; `SERV3` the hardest (§VI-D).
//! * `MM1..5` — constant-trip loop kernels (loop-predictor territory),
//!   `MM5` with BF-hostile local patterns.

use crate::record::Trace;
use crate::rng::SplitMix64;
use crate::source::SynthSource;
use crate::synth::builder::{Filler, ProgramBuilder};
use crate::synth::program::Program;

/// Version of the synthetic trace generator. Any change to record
/// emission — behaviour evaluation, scene selection, seeding,
/// instruction gaps — must bump this, because it is folded into
/// [`TraceSpec::fingerprint`] and therefore invalidates every on-disk
/// trace-cache entry.
pub const GENERATOR_VERSION: u32 = 1;

/// Workload category, mirroring CBP-4's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Long SPEC2006-derived traces.
    Spec,
    /// Floating-point workloads.
    Fp,
    /// Integer workloads.
    Int,
    /// Multi-media workloads.
    Mm,
    /// Server workloads.
    Serv,
}

impl Category {
    /// All categories in suite order.
    pub const ALL: [Category; 5] = [
        Category::Spec,
        Category::Fp,
        Category::Int,
        Category::Mm,
        Category::Serv,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Spec => "SPEC",
            Category::Fp => "FP",
            Category::Int => "INT",
            Category::Mm => "MM",
            Category::Serv => "SERV",
        }
    }
}

/// A deep-correlation knob: one `add_deep_block` invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepKnob {
    /// Dynamic distance between source and first consumer.
    pub distance: usize,
    /// Filler class between source and consumers.
    pub filler: Filler,
    /// Number of consumer branches.
    pub consumers: usize,
    /// Consumer noise (flip probability).
    pub noise: f64,
    /// Deterministic warm-up branches preceding the source.
    pub warmup: usize,
    /// Filler branches separating consecutive consumers.
    pub gap: usize,
    /// Scene selection weight.
    pub weight: u32,
}

/// The complete knob set describing one synthetic trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Knobs {
    /// Straight-line biased runs: `(run_length, weight)` per scene.
    pub bias_runs: Vec<(usize, u32)>,
    /// Near pairwise correlations: `(pairs, noise, weight)` per scene.
    pub near: Vec<(usize, f64, u32)>,
    /// XOR correlations (TAGE-favouring): `(noise, weight)` per scene.
    pub xor: Vec<(f64, u32)>,
    /// Noisy weakly-biased runs: `(run_length, p_lo, p_hi, weight)`.
    pub noise: Vec<(usize, f64, f64, u32)>,
    /// Deep correlation blocks.
    pub deep: Vec<DeepKnob>,
    /// Constant-trip loop kernels: `(trip, body_branches, weight)`.
    pub loops: Vec<(u32, usize, u32)>,
    /// Local-pattern loops: `(period, branches, sweeps, weight)`.
    pub local_loops: Vec<(usize, usize, u32, u32)>,
    /// Phase-flip pools: `(branches, period, weight)`.
    pub phase: Vec<(usize, u64, u32)>,
    /// Figure 4 positional loops: `(modulus, weight)`.
    pub positional: Vec<(u32, u32)>,
}

/// Default number of branch records in a generated long trace.
pub const LONG_TRACE_LEN: usize = 300_000;
/// Default number of branch records in a generated short trace.
pub const SHORT_TRACE_LEN: usize = 100_000;

/// Specification of one suite trace: name, category, and workload knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    name: String,
    category: Category,
    long: bool,
    seed: u64,
    knobs: Knobs,
}

impl TraceSpec {
    /// Creates a spec. The seed is derived from the name so that every
    /// trace is stable independent of suite ordering.
    pub fn new(name: impl Into<String>, category: Category, long: bool, knobs: Knobs) -> Self {
        let name = name.into();
        let mut seed = 0xC0FF_EE00u64;
        for b in name.bytes() {
            seed = SplitMix64::new(seed ^ u64::from(b)).next_u64();
        }
        Self {
            name,
            category,
            long,
            seed,
            knobs,
        }
    }

    /// The trace's name, e.g. `"SPEC03"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace's category.
    pub fn category(&self) -> Category {
        self.category
    }

    /// Whether this is one of the 20 long traces.
    pub fn is_long(&self) -> bool {
        self.long
    }

    /// The workload knobs.
    pub fn knobs(&self) -> &Knobs {
        &self.knobs
    }

    /// Default generated length in branch records.
    pub fn default_len(&self) -> usize {
        if self.long {
            LONG_TRACE_LEN
        } else {
            SHORT_TRACE_LEN
        }
    }

    /// Builds the synthetic program for this spec.
    pub fn build_program(&self) -> Program {
        let mut b = ProgramBuilder::new(self.seed);
        for &(len, w) in &self.knobs.bias_runs {
            b.add_bias_run(len, w);
        }
        for &(pairs, noise, w) in &self.knobs.near {
            b.add_near_correlation(pairs, noise, w);
        }
        for &(noise, w) in &self.knobs.xor {
            b.add_xor_correlation(noise, w);
        }
        for &(len, lo, hi, w) in &self.knobs.noise {
            b.add_noise_run(len, (lo, hi), w);
        }
        for d in &self.knobs.deep {
            b.add_deep_block(
                d.distance,
                d.filler,
                d.consumers,
                d.noise,
                d.warmup,
                d.gap,
                d.weight,
            );
        }
        for &(trip, body, w) in &self.knobs.loops {
            b.add_loop_kernel(trip, body, w);
        }
        for &(period, n, sweeps, w) in &self.knobs.local_loops {
            b.add_local_pattern_loop(period, n, sweeps, w);
        }
        for &(n, period, w) in &self.knobs.phase {
            b.add_phase_pool(n, period, w);
        }
        for &(modulus, w) in &self.knobs.positional {
            b.add_positional_loop(modulus, w);
        }
        b.build()
    }

    /// Generates the trace at its default length.
    pub fn generate(&self) -> Trace {
        self.generate_len(self.default_len())
    }

    /// Generates the trace with an explicit record count. Long/short
    /// proportions can be preserved by scaling with [`TraceSpec::is_long`].
    pub fn generate_len(&self, n_records: usize) -> Trace {
        self.build_program()
            .emit(self.name.clone(), n_records, self.seed ^ 0x5EED)
    }

    /// Creates a streaming source yielding the trace at its default
    /// length without materializing it.
    pub fn stream(&self) -> SynthSource {
        self.stream_len(self.default_len())
    }

    /// Creates a streaming source yielding exactly `n_records` records —
    /// the same sequence [`TraceSpec::generate_len`] materializes.
    pub fn stream_len(&self, n_records: usize) -> SynthSource {
        SynthSource::new(
            self.name.clone(),
            self.build_program(),
            self.seed ^ 0x5EED,
            n_records,
        )
    }

    /// Content fingerprint of the generated trace: an FNV-1a hash over
    /// every input that determines the record sequence — generator
    /// version, name, length class, seed, the full knob set, and the
    /// requested record count. Two specs share a fingerprint iff they
    /// generate byte-identical traces, which makes the fingerprint a
    /// sound content address for the on-disk trace cache
    /// ([`crate::cache::TraceCache`]).
    pub fn fingerprint(&self, n_records: usize) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        {
            // Length-prefixed FNV-1a, same framing as the sweep
            // journal's matrix id: framing prevents adjacent fields
            // from aliasing under concatenation.
            let mut eat = |bytes: &[u8]| {
                for &b in (bytes.len() as u64).to_le_bytes().iter().chain(bytes) {
                    hash ^= u64::from(b);
                    hash = hash.wrapping_mul(0x100_0000_01B3);
                }
            };
            eat(&GENERATOR_VERSION.to_le_bytes());
            eat(self.name.as_bytes());
            eat(&[u8::from(self.long)]);
            eat(&self.seed.to_le_bytes());
            // Knobs carry f64 fields; Debug formatting renders them
            // round-trip exactly, so distinct knob sets cannot collide
            // through lossy formatting.
            eat(format!("{:?}", self.knobs).as_bytes());
            eat(&(n_records as u64).to_le_bytes());
        }
        hash
    }
}

/// Warm-up sized so that at least one conventional-TAGE 15-table history
/// length strictly exceeds `distance` while its window still lands inside
/// the scene's deterministic prefix.
fn warmup_for(distance: usize) -> usize {
    // Conventional 15-table history lengths (see `bfbp-tage`): the next
    // length after `distance` defines how much deterministic context the
    // window swallows beyond the source.
    const LENGTHS: [usize; 15] = [
        3, 8, 12, 17, 33, 35, 67, 97, 138, 195, 330, 517, 1193, 1741, 1930,
    ];
    let next = LENGTHS
        .iter()
        .copied()
        .find(|&l| l > distance)
        .unwrap_or(1930);
    (next - distance.min(next)) + 64
}

/// A mid-range correlation: one consumer at `distance` behind biased
/// filler, no gap. These populate the 20..195-branch band that gives
/// conventional TAGE its characteristic accuracy-vs-table-count slope
/// (Figure 10) — real programs have correlations at every distance, not
/// only at the extremes.
fn mid(distance: usize, weight: u32) -> DeepKnob {
    DeepKnob {
        distance,
        filler: Filler::DistinctBiased,
        consumers: 1,
        noise: 0.01,
        warmup: warmup_for(distance),
        gap: 0,
        weight,
    }
}

/// Baseline knobs shared by every trace: near correlations keep all
/// predictors fed, XOR gives the TAGE family its small generic edge, noise
/// sets the irreducible MPKI floor, and a couple of plain loops exercise
/// loop prediction.
fn base_knobs(noise_len: usize, noise_lo: f64, noise_hi: f64) -> Knobs {
    Knobs {
        near: vec![(4, 0.01, 24), (6, 0.01, 16)],
        xor: vec![(0.02, 10), (0.03, 8)],
        noise: vec![(noise_len, noise_lo, noise_hi, 6)],
        deep: vec![mid(25, 12), mid(60, 10), mid(120, 9), mid(180, 8)],
        loops: vec![(12, 2, 8), (25, 3, 6)],
        ..Knobs::default()
    }
}

/// A consumer chain: `consumers` branches all correlated with one
/// source at `distance`, separated by `gap` filler branches. The gap
/// sets which predictors can follow the chain: a predictor needs either
/// an unfiltered history longer than the gap or the ability to filter
/// the gap away. Gaps of 60/90/130 are unlocked by successively longer
/// conventional-TAGE tables (L = 67/97/138); a 210 gap exceeds the
/// 10-table reach (195) and requires 11+ tables or bias-free filtering.
fn chain(distance: usize, filler: Filler, consumers: usize, gap: usize, weight: u32) -> DeepKnob {
    DeepKnob {
        distance,
        filler,
        consumers,
        noise: 0.01,
        warmup: warmup_for(distance),
        gap,
        weight,
    }
}

fn spec_trace(idx: usize) -> TraceSpec {
    let name = format!("SPEC{idx:02}");
    let mut k = base_knobs(12, 0.88, 0.96);
    k.bias_runs = vec![(40, 10), (25, 8)];
    k.positional = vec![(10, 4)];
    // Mid/long correlation chains present in every long trace: gaps of
    // 60/90/130 grade the conventional table-count curve (Figure 10);
    // the 210 gap and the deep sources are the 10-vs-15-table and
    // bias-free content.
    k.deep.extend(vec![
        chain(290, Filler::DistinctBiased, 10, 60, 5),
        chain(480, Filler::DistinctBiased, 10, 90, 4),
        chain(480, Filler::DistinctBiased, 8, 130, 4),
        chain(480, Filler::DistinctBiased, 8, 210, 4),
    ]);
    match idx {
        // Bias-heavy traces (Figure 2) with extra deep reach behind
        // distinct-biased filler: bias filtering's best case.
        2 | 6 | 9 => {
            k.bias_runs = vec![(120, 16), (90, 12), (60, 8)];
            k.deep.push(chain(700, Filler::DistinctBiased, 8, 210, 4));
        }
        // Few biased branches; deterministic-loop filler and gaps that
        // only the recency stack collapses (Figure 9's RS story). All
        // filler is loop-based so the static footprint stays mostly
        // non-biased (Figure 2's low end).
        3 | 14 | 18 => {
            k.bias_runs = vec![(8, 4)];
            k.noise.push((40, 0.55, 0.80, 2));
            k.deep = vec![
                chain(60, Filler::DeterministicLoop, 1, 0, 10),
                chain(140, Filler::DeterministicLoop, 1, 0, 9),
                chain(290, Filler::DeterministicLoop, 10, 60, 5),
                chain(480, Filler::DeterministicLoop, 10, 90, 4),
                chain(480, Filler::DeterministicLoop, 8, 210, 7),
                chain(1150, Filler::DeterministicLoop, 6, 210, 5),
            ];
        }
        // Long-history-sensitive traces: gradual 10-to-15-table gains.
        0 | 10 | 15 | 17 => {
            k.deep.push(chain(1150, Filler::DistinctBiased, 6, 210, 4));
            k.deep
                .push(chain(1650, Filler::DeterministicLoop, 6, 210, 3));
        }
        // Local-history trace: unfiltered history wins (par. VI-D).
        7 => {
            k.local_loops = vec![(24, 2, 4, 4), (90, 1, 3, 3)];
        }
        // Marginal 15-table gains: drop the 210-gap chain so everything
        // sits within 10-table reach.
        5 | 8 | 11 | 19 => {
            k.deep.pop();
            k.deep.push(chain(120, Filler::DistinctBiased, 8, 90, 4));
        }
        // Noisy-loop filler: perceptron-style summation handles the body
        // noise best.
        4 | 12 => {
            k.deep.push(chain(350, Filler::LoopedNonBiased, 8, 90, 3));
        }
        _ => {
            k.deep
                .push(chain(480, Filler::DeterministicLoop, 6, 210, 4));
        }
    }
    TraceSpec::new(name, Category::Spec, true, k)
}

fn fp_trace(idx: usize) -> TraceSpec {
    let name = format!("FP{idx}");
    // Floating-point: very predictable, heavy loops, low noise floor.
    let mut k = base_knobs(8, 0.93, 0.98);
    k.bias_runs = vec![(70, 14), (40, 10)];
    k.loops = vec![(40, 3, 10), (64, 2, 8), (16, 2, 6)];
    k.deep.push(chain(290, Filler::DistinctBiased, 8, 90, 4));
    match idx {
        1 => {
            // FP1: biased-heavy but dynamic detection suffers (par. VI-D):
            // phase flips churn the BST.
            k.phase = vec![(24, 6_000, 10)];
            k.deep.push(chain(480, Filler::DistinctBiased, 6, 210, 4));
        }
        2 => {
            // FP2: local-history branches; recency-stack filtering loses.
            k.local_loops = vec![(20, 2, 4, 3), (110, 1, 3, 2)];
        }
        _ => {
            k.deep.push(chain(480, Filler::DistinctBiased, 6, 210, 3));
        }
    }
    TraceSpec::new(name, Category::Fp, false, k)
}

fn int_trace(idx: usize) -> TraceSpec {
    let name = format!("INT{idx}");
    let mut k = base_knobs(10, 0.88, 0.95);
    k.bias_runs = vec![(45, 10), (25, 6)];
    k.positional = vec![(12, 5)];
    k.deep.extend(vec![
        chain(290, Filler::DistinctBiased, 8, 60, 4),
        chain(480, Filler::DistinctBiased, 8, 130, 4),
    ]);
    match idx {
        // INT1/INT4: benefit from bias-free history (Figure 9 text);
        1 | 4 => {
            k.bias_runs = vec![(70, 14), (45, 10)];
            k.deep.push(chain(480, Filler::DistinctBiased, 8, 210, 4));
        }
        // INT5: long-history sensitive (par. VI-D list).
        5 => {
            k.deep
                .push(chain(1150, Filler::DeterministicLoop, 6, 210, 4));
        }
        _ => {
            k.deep
                .push(chain(480, Filler::DeterministicLoop, 6, 210, 3));
        }
    }
    TraceSpec::new(name, Category::Int, false, k)
}

fn mm_trace(idx: usize) -> TraceSpec {
    let name = format!("MM{idx}");
    // Multi-media: kernel loops with constant trip counts.
    let mut k = base_knobs(9, 0.90, 0.96);
    k.bias_runs = vec![(35, 8)];
    k.loops = vec![(32, 4, 12), (80, 2, 8), (8, 3, 8)];
    k.deep.push(chain(290, Filler::DistinctBiased, 6, 90, 3));
    match idx {
        3 => {
            // MM3 benefits from bias-free history (Figure 9 text).
            k.bias_runs = vec![(80, 14), (50, 10)];
            k.deep.push(chain(400, Filler::DistinctBiased, 6, 210, 3));
        }
        5 => {
            // MM5: BF-hostile -- local patterns plus detection churn.
            k.local_loops = vec![(22, 2, 4, 4)];
            k.phase = vec![(20, 5_000, 8)];
        }
        _ => {
            k.deep.push(chain(180, Filler::DeterministicLoop, 4, 90, 3));
        }
    }
    TraceSpec::new(name, Category::Mm, false, k)
}

fn serv_trace(idx: usize) -> TraceSpec {
    let name = format!("SERV{idx}");
    // Server: huge static footprint, high biased fraction, phase flips
    // that stress dynamic bias detection (par. VI-D).
    let mut k = base_knobs(12, 0.87, 0.95);
    k.bias_runs = vec![(120, 14), (90, 12), (70, 10), (50, 8)];
    k.near = vec![(4, 0.01, 20), (8, 0.01, 14), (6, 0.01, 10)];
    k.phase = vec![(30, 8_000, 8)];
    k.deep.push(chain(250, Filler::DistinctBiased, 6, 60, 3));
    if idx == 3 {
        // SERV3 suffers most from dynamic detection: denser flips.
        k.phase = vec![(40, 3_500, 14), (24, 9_000, 8)];
    }
    TraceSpec::new(name, Category::Serv, false, k)
}

/// Returns the full 40-trace suite in the paper's presentation order:
/// `SPEC00..SPEC19`, `FP1..FP5`, `INT1..INT5`, `MM1..MM5`,
/// `SERV1..SERV5`.
pub fn suite() -> Vec<TraceSpec> {
    let mut specs = Vec::with_capacity(40);
    specs.extend((0..20).map(spec_trace));
    specs.extend((1..=5).map(fp_trace));
    specs.extend((1..=5).map(int_trace));
    specs.extend((1..=5).map(mm_trace));
    specs.extend((1..=5).map(serv_trace));
    specs
}

/// Looks up a suite trace by name (case-sensitive).
pub fn find(name: &str) -> Option<TraceSpec> {
    suite().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BiasProfile;

    #[test]
    fn suite_has_forty_named_traces() {
        let specs = suite();
        assert_eq!(specs.len(), 40);
        let names: Vec<&str> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(names[0], "SPEC00");
        assert_eq!(names[19], "SPEC19");
        assert_eq!(names[20], "FP1");
        assert_eq!(names[25], "INT1");
        assert_eq!(names[30], "MM1");
        assert_eq!(names[35], "SERV1");
        assert_eq!(names[39], "SERV5");
        // All distinct.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
    }

    #[test]
    fn long_short_split_matches_cbp() {
        let specs = suite();
        assert_eq!(specs.iter().filter(|s| s.is_long()).count(), 20);
        assert!(specs.iter().take(20).all(|s| s.is_long()));
        assert!(specs.iter().skip(20).all(|s| !s.is_long()));
    }

    #[test]
    fn categories_are_grouped() {
        let specs = suite();
        assert!(specs[..20].iter().all(|s| s.category() == Category::Spec));
        assert!(specs[20..25].iter().all(|s| s.category() == Category::Fp));
        assert!(specs[25..30].iter().all(|s| s.category() == Category::Int));
        assert!(specs[30..35].iter().all(|s| s.category() == Category::Mm));
        assert!(specs[35..40].iter().all(|s| s.category() == Category::Serv));
    }

    #[test]
    fn find_locates_traces() {
        assert!(find("SPEC03").is_some());
        assert!(find("SERV3").is_some());
        assert!(find("NOPE").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = find("SPEC00").unwrap();
        let a = spec.generate_len(5_000);
        let b = spec.generate_len(5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn traces_differ_across_names() {
        let a = find("SPEC00").unwrap().generate_len(5_000);
        let b = find("SPEC01").unwrap().generate_len(5_000);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_length_matches_request() {
        let spec = find("FP1").unwrap();
        assert_eq!(spec.generate_len(1234).len(), 1234);
        assert_eq!(spec.default_len(), SHORT_TRACE_LEN);
        assert_eq!(find("SPEC00").unwrap().default_len(), LONG_TRACE_LEN);
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = find("SPEC00").unwrap();
        let b = find("SPEC01").unwrap();
        assert_eq!(a.fingerprint(1000), a.fingerprint(1000));
        assert_ne!(a.fingerprint(1000), b.fingerprint(1000));
        assert_ne!(a.fingerprint(1000), a.fingerprint(2000));
        // The whole suite at one length: 40 distinct fingerprints.
        let mut prints: Vec<u64> = suite().iter().map(|s| s.fingerprint(5000)).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), 40);
    }

    #[test]
    fn bias_ordering_matches_figure_2_story() {
        // SPEC02 (bias-heavy) must have a much higher static biased
        // fraction than SPEC03 (bias-light).
        let heavy = BiasProfile::measure(&find("SPEC02").unwrap().generate_len(60_000));
        let light = BiasProfile::measure(&find("SPEC03").unwrap().generate_len(60_000));
        assert!(
            heavy.static_biased_percent() > light.static_biased_percent() + 20.0,
            "heavy {:.1}% vs light {:.1}%",
            heavy.static_biased_percent(),
            light.static_biased_percent()
        );
    }

    #[test]
    fn serv_traces_have_large_footprint() {
        let serv = BiasProfile::measure(&find("SERV1").unwrap().generate_len(60_000));
        let fp = BiasProfile::measure(&find("FP3").unwrap().generate_len(60_000));
        assert!(serv.static_conditionals() > fp.static_conditionals());
    }

    #[test]
    fn warmup_covers_next_history_length() {
        // distance 600 → next conventional length is 1193; warm-up must
        // bridge the gap.
        assert!(warmup_for(600) >= 1193 - 600);
        assert!(warmup_for(100) >= 38);
        // Beyond the longest table, only slack remains.
        assert_eq!(warmup_for(2500), 64);
    }
}
