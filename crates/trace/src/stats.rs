//! Trace statistics: branch mix, bias profile (Figure 2), distance
//! diagnostics.
//!
//! The paper's Figure 2 reports, per trace, the percentage of *completely
//! biased* static conditional branches — branches that resolve in a single
//! direction for the entire run. [`BiasProfile`] computes exactly that,
//! plus the dynamic (per-execution) share those branches account for,
//! which is what actually determines how much history the bias-free
//! filter reclaims.

use std::collections::HashMap;

use crate::record::{BranchKind, BranchRecord, Trace};

/// Direction tally for one static conditional branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DirTally {
    taken: u64,
    not_taken: u64,
}

impl DirTally {
    fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    fn is_biased(&self) -> bool {
        self.taken == 0 || self.not_taken == 0
    }
}

/// Static/dynamic bias statistics for a trace (Figure 2).
///
/// # Examples
///
/// ```
/// use bfbp_trace::record::{BranchRecord, Trace};
/// use bfbp_trace::stats::BiasProfile;
///
/// let trace = Trace::new(
///     "t",
///     vec![
///         BranchRecord::cond(0x10, 0x20, true, 0),  // always taken
///         BranchRecord::cond(0x10, 0x20, true, 0),
///         BranchRecord::cond(0x30, 0x40, true, 0),  // both directions
///         BranchRecord::cond(0x30, 0x40, false, 0),
///     ],
/// );
/// let profile = BiasProfile::measure(&trace);
/// assert_eq!(profile.static_conditionals(), 2);
/// assert_eq!(profile.static_biased(), 1);
/// assert!((profile.static_biased_percent() - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BiasProfile {
    tallies: HashMap<u64, DirTally>,
    dynamic_conditionals: u64,
}

impl BiasProfile {
    /// Measures the bias profile of a whole trace.
    pub fn measure(trace: &Trace) -> Self {
        let mut profile = Self::default();
        for record in trace {
            profile.observe(record);
        }
        profile
    }

    /// Folds a single record into the profile (streaming use).
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.kind != BranchKind::CondDirect {
            return;
        }
        self.dynamic_conditionals += 1;
        let tally = self.tallies.entry(record.pc).or_default();
        if record.taken {
            tally.taken += 1;
        } else {
            tally.not_taken += 1;
        }
    }

    /// Number of distinct static conditional branches observed.
    pub fn static_conditionals(&self) -> u64 {
        self.tallies.len() as u64
    }

    /// Number of static conditionals that resolved in only one direction.
    pub fn static_biased(&self) -> u64 {
        self.tallies.values().filter(|t| t.is_biased()).count() as u64
    }

    /// Figure 2's metric: percent of static conditional branches that are
    /// completely biased. Returns 0 for an empty profile.
    pub fn static_biased_percent(&self) -> f64 {
        if self.tallies.is_empty() {
            return 0.0;
        }
        100.0 * self.static_biased() as f64 / self.static_conditionals() as f64
    }

    /// Number of dynamic conditional branch executions observed.
    pub fn dynamic_conditionals(&self) -> u64 {
        self.dynamic_conditionals
    }

    /// Dynamic executions attributable to completely biased static
    /// branches.
    pub fn dynamic_biased(&self) -> u64 {
        self.tallies
            .values()
            .filter(|t| t.is_biased())
            .map(DirTally::total)
            .sum()
    }

    /// Percent of dynamic conditional executions that come from completely
    /// biased branches — how much of the raw history the bias-free filter
    /// removes. Returns 0 for an empty profile.
    pub fn dynamic_biased_percent(&self) -> f64 {
        if self.dynamic_conditionals == 0 {
            return 0.0;
        }
        100.0 * self.dynamic_biased() as f64 / self.dynamic_conditionals as f64
    }

    /// Returns whether the given static branch was completely biased, or
    /// `None` if it never appeared.
    pub fn is_biased(&self, pc: u64) -> Option<bool> {
        self.tallies.get(&pc).map(DirTally::is_biased)
    }
}

/// Overall composition of a trace: how many records of each kind, how many
/// instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMix {
    counts: [u64; 6],
    instructions: u64,
}

impl TraceMix {
    /// Measures the mix of a whole trace.
    pub fn measure(trace: &Trace) -> Self {
        let mut mix = Self::default();
        for record in trace {
            mix.counts[record.kind as usize] += 1;
            mix.instructions += record.instructions();
        }
        mix
    }

    /// Number of records of the given kind.
    pub fn count(&self, kind: BranchKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total records of all kinds.
    pub fn total_branches(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total instructions (branches plus non-branch gaps).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Conditional branches per 1000 instructions — a sanity metric; real
    /// workloads sit around 100–200.
    pub fn cond_per_kilo_inst(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        1000.0 * self.count(BranchKind::CondDirect) as f64 / self.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pc: u64, taken: bool) -> BranchRecord {
        BranchRecord::cond(pc, pc + 0x10, taken, 3)
    }

    #[test]
    fn empty_profile_is_zero() {
        let profile = BiasProfile::default();
        assert_eq!(profile.static_conditionals(), 0);
        assert_eq!(profile.static_biased_percent(), 0.0);
        assert_eq!(profile.dynamic_biased_percent(), 0.0);
        assert_eq!(profile.is_biased(0x10), None);
    }

    #[test]
    fn all_biased() {
        let trace = Trace::new(
            "t",
            vec![record(1, true), record(2, false), record(1, true)],
        );
        let p = BiasProfile::measure(&trace);
        assert_eq!(p.static_conditionals(), 2);
        assert_eq!(p.static_biased(), 2);
        assert_eq!(p.static_biased_percent(), 100.0);
        assert_eq!(p.dynamic_biased(), 3);
        assert_eq!(p.is_biased(1), Some(true));
    }

    #[test]
    fn single_flip_makes_non_biased() {
        let trace = Trace::new(
            "t",
            vec![record(1, true), record(1, true), record(1, false)],
        );
        let p = BiasProfile::measure(&trace);
        assert_eq!(p.static_biased(), 0);
        assert_eq!(p.is_biased(1), Some(false));
        assert_eq!(p.dynamic_biased_percent(), 0.0);
    }

    #[test]
    fn non_conditionals_are_ignored() {
        let trace = Trace::new(
            "t",
            vec![
                record(1, true),
                BranchRecord::uncond(2, 3, BranchKind::Call, 0),
                BranchRecord::uncond(4, 5, BranchKind::Return, 0),
            ],
        );
        let p = BiasProfile::measure(&trace);
        assert_eq!(p.static_conditionals(), 1);
        assert_eq!(p.dynamic_conditionals(), 1);
    }

    #[test]
    fn dynamic_vs_static_percent_differ() {
        // One biased branch executed 9 times, one non-biased executed twice:
        // static 50% biased, dynamic 9/11.
        let mut records = vec![record(1, true); 9];
        records.push(record(2, true));
        records.push(record(2, false));
        let p = BiasProfile::measure(&Trace::new("t", records));
        assert!((p.static_biased_percent() - 50.0).abs() < 1e-9);
        assert!((p.dynamic_biased_percent() - 100.0 * 9.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn mix_counts_kinds_and_instructions() {
        let trace = Trace::new(
            "t",
            vec![
                record(1, true),                                   // 4 insts
                BranchRecord::uncond(2, 3, BranchKind::Call, 10),  // 11 insts
                BranchRecord::uncond(4, 5, BranchKind::Return, 0), // 1 inst
            ],
        );
        let mix = TraceMix::measure(&trace);
        assert_eq!(mix.count(BranchKind::CondDirect), 1);
        assert_eq!(mix.count(BranchKind::Call), 1);
        assert_eq!(mix.count(BranchKind::Return), 1);
        assert_eq!(mix.count(BranchKind::Indirect), 0);
        assert_eq!(mix.total_branches(), 3);
        assert_eq!(mix.instructions(), 16);
        assert!((mix.cond_per_kilo_inst() - 1000.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn empty_mix_rates_are_zero() {
        let mix = TraceMix::default();
        assert_eq!(mix.cond_per_kilo_inst(), 0.0);
    }
}
