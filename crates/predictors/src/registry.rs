//! Registry hooks: registers this crate's baseline predictors with a
//! [`PredictorRegistry`], one entry per predictor family, with the
//! paper's matched-budget configurations as defaults.

use bfbp_sim::registry::{BuildError, Params, PredictorRegistry};

use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::perceptron::Perceptron;
use crate::piecewise::{PiecewiseConfig, PiecewiseLinear};
use crate::snap::{ScaledNeural, ScaledNeuralConfig};

fn log2_in(params: &Params, key: &str, max: u32) -> Result<u32, BuildError> {
    let v = params.u32(key)?;
    if !(1..=max).contains(&v) {
        return Err(BuildError::invalid(key, format!("must be 1..={max}")));
    }
    Ok(v)
}

/// Registers `bimodal`, `gshare`, `perceptron`, `piecewise`, and
/// `oh-snap`.
///
/// # Panics
///
/// Panics if any of those names is already registered.
pub fn register(registry: &mut PredictorRegistry) {
    registry.register(
        "bimodal",
        "PC-indexed table of saturating counters (simplest dynamic baseline)",
        Params::new().set("log-size", 14u32).set("bits", 2u32),
        |p| {
            let log_size = log2_in(p, "log-size", 30)?;
            let bits = p.u32("bits")?;
            if !(1..=8).contains(&bits) {
                return Err(BuildError::invalid("bits", "must be 1..=8"));
            }
            Ok(Box::new(Bimodal::new(log_size, bits)))
        },
    );
    registry.register(
        "gshare",
        "2-bit counters indexed by PC xor global history (64 KiB default)",
        Params::new().set("log-size", 18u32).set("hist", 16usize),
        |p| {
            let log_size = log2_in(p, "log-size", 30)?;
            let hist = p.usize("hist")?;
            if !(1..=64).contains(&hist) {
                return Err(BuildError::invalid("hist", "must be 1..=64"));
            }
            Ok(Box::new(Gshare::new(log_size, hist)))
        },
    );
    registry.register(
        "perceptron",
        "Jiménez–Lin global perceptron (64 KiB default: 2048 rows, 28-bit history)",
        Params::new().set("rows", 2048usize).set("hist", 28usize),
        |p| {
            let rows = p.usize("rows")?;
            if rows == 0 {
                return Err(BuildError::invalid("rows", "must be non-zero"));
            }
            let hist = p.usize("hist")?;
            if !(1..=1024).contains(&hist) {
                return Err(BuildError::invalid("hist", "must be 1..=1024"));
            }
            Ok(Box::new(Perceptron::new(rows, hist)))
        },
    );
    registry.register(
        "piecewise",
        "hashed piecewise-linear neural predictor (Figure 9 conventional baseline)",
        {
            let c = PiecewiseConfig::conventional_64kb();
            Params::new()
                .set("hist", c.history_len)
                .set("log-table", c.log_table)
                .set("log-bias", c.log_bias)
                .set("folded-hist", c.folded_hist)
        },
        |p| {
            let config = PiecewiseConfig {
                history_len: p.usize("hist")?,
                log_table: log2_in(p, "log-table", 30)?,
                log_bias: log2_in(p, "log-bias", 30)?,
                folded_hist: p.bool("folded-hist")?,
            };
            if config.history_len == 0 {
                return Err(BuildError::invalid("hist", "must be non-zero"));
            }
            Ok(Box::new(PiecewiseLinear::new(config)))
        },
    );
    registry.register(
        "oh-snap",
        "OH-SNAP-style scaled neural predictor (strongest neural baseline, Figure 8)",
        {
            let c = ScaledNeuralConfig::budget_64kb();
            Params::new()
                .set("hist", c.history_len)
                .set("log-table", c.log_table)
                .set("log-bias", c.log_bias)
                .set("local-bits", c.local_bits)
                .set("log-local-hist", c.log_local_hist)
                .set("log-local-weights", c.log_local_weights)
        },
        |p| {
            let config = ScaledNeuralConfig {
                history_len: p.usize("hist")?,
                log_table: log2_in(p, "log-table", 30)?,
                log_bias: log2_in(p, "log-bias", 30)?,
                local_bits: p.usize("local-bits")?,
                log_local_hist: log2_in(p, "log-local-hist", 30)?,
                log_local_weights: log2_in(p, "log-local-weights", 30)?,
            };
            if config.history_len == 0 {
                return Err(BuildError::invalid("hist", "must be non-zero"));
            }
            if config.local_bits == 0 {
                return Err(BuildError::invalid("local-bits", "must be non-zero"));
            }
            Ok(Box::new(ScaledNeural::new(config)))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> PredictorRegistry {
        let mut r = PredictorRegistry::new();
        register(&mut r);
        r
    }

    #[test]
    fn every_entry_builds_with_defaults() {
        let r = registry();
        for name in r.names() {
            let p = r
                .build(name, &Params::new())
                .unwrap_or_else(|e| panic!("default build of {name} failed: {e}"));
            assert!(p.storage().total_bits() > 0, "{name} reports no storage");
        }
    }

    #[test]
    fn overrides_change_the_configuration() {
        let r = registry();
        let small = r
            .build("gshare", &Params::new().set("log-size", 10u32))
            .unwrap();
        let big = r.build("gshare", &Params::new()).unwrap();
        assert!(small.storage().total_bits() < big.storage().total_bits());
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        let r = registry();
        assert!(r
            .build("gshare", &Params::new().set("hist", 65usize))
            .is_err());
        assert!(r
            .build("bimodal", &Params::new().set("bits", 9u32))
            .is_err());
    }
}
