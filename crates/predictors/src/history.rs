//! Global-history machinery shared by all history-based predictors:
//! a bounded bit history, incremental folded ("cyclic shift register")
//! histories as used by O-GEHL/TAGE, path history, and the bucketed folds
//! that the neural predictors hash into their weight indices (§IV-A of
//! the paper).

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};

/// A bounded global history of branch outcomes, newest first.
///
/// Backed by a power-of-two ring of 64-bit words; `bit(0)` is the most
/// recently pushed outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalHistory {
    words: Vec<u64>,
    head: usize,
    len: usize,
    capacity: usize,
}

impl GlobalHistory {
    /// Creates a history able to hold at least `capacity` outcomes
    /// (rounded up to a multiple of 64).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be non-zero");
        let words = capacity.div_ceil(64).next_power_of_two();
        Self {
            words: vec![0; words],
            head: 0,
            len: 0,
            capacity: words * 64,
        }
    }

    /// Maximum number of outcomes retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of outcomes currently held (saturates at capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no outcome has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a new outcome, evicting the oldest once full.
    pub fn push(&mut self, taken: bool) {
        let word = self.head / 64;
        let bit = self.head % 64;
        let mask = 1u64 << bit;
        if taken {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
        self.head = (self.head + 1) % self.capacity;
        if self.len < self.capacity {
            self.len += 1;
        }
    }

    /// Outcome `age` pushes ago (`0` = newest). Ages beyond what has been
    /// pushed (or beyond capacity) read as `false`, matching hardware
    /// registers that power up cleared.
    pub fn bit(&self, age: usize) -> bool {
        if age >= self.len {
            return false;
        }
        let pos = (self.head + self.capacity - 1 - age) % self.capacity;
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Packs the newest `n` outcomes into an integer, bit `i` = age `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n <= 64, "low_bits supports at most 64 bits");
        let mut out = 0u64;
        for age in 0..n {
            if self.bit(age) {
                out |= 1 << age;
            }
        }
        out
    }
}

/// An incrementally maintained fold of the newest `olen` history bits
/// into `clen` bits, as used for TAGE index/tag computation.
///
/// The fold is updated with the inserted bit and the bit that leaves the
/// `olen`-window; the invariant (checked by property tests) is that the
/// register always equals the XOR of the window's `clen`-bit chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryFold {
    comp: u64,
    olen: usize,
    clen: usize,
    outpoint: usize,
}

impl HistoryFold {
    /// Creates a fold of window `olen` into `clen` bits.
    ///
    /// # Panics
    ///
    /// Panics if `clen` is zero or greater than 63.
    pub fn new(olen: usize, clen: usize) -> Self {
        assert!((1..=63).contains(&clen), "fold width must be 1..=63");
        Self {
            comp: 0,
            olen,
            clen,
            outpoint: olen % clen,
        }
    }

    /// The compressed register value.
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// Window length in original bits.
    pub fn original_len(&self) -> usize {
        self.olen
    }

    /// Compressed length in bits.
    pub fn compressed_len(&self) -> usize {
        self.clen
    }

    /// Updates the fold for a new history push. `inserted` is the new
    /// outcome; `evicted` is the outcome that was at age `olen - 1`
    /// *before* the push (it leaves the window).
    pub fn push(&mut self, inserted: bool, evicted: bool) {
        if self.olen == 0 {
            return;
        }
        self.comp = (self.comp << 1) | u64::from(inserted);
        self.comp ^= u64::from(evicted) << self.outpoint;
        self.comp ^= self.comp >> self.clen;
        self.comp &= (1u64 << self.clen) - 1;
    }

    /// Recomputes the fold from scratch over `history` (reference
    /// implementation used by tests).
    pub fn recompute(&self, history: &GlobalHistory) -> u64 {
        let mut comp = 0u64;
        // Oldest-to-newest replay of the incremental update.
        for age in (0..self.olen).rev() {
            comp = (comp << 1) | u64::from(history.bit(age));
            comp ^= comp >> self.clen;
            comp &= (1u64 << self.clen) - 1;
        }
        comp
    }
}

/// A [`GlobalHistory`] plus a set of [`HistoryFold`]s kept in sync by a
/// single `push`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManagedHistory {
    history: GlobalHistory,
    folds: Vec<HistoryFold>,
}

impl ManagedHistory {
    /// Creates a managed history with the given capacity and fold specs
    /// `(olen, clen)`.
    ///
    /// # Panics
    ///
    /// Panics if any fold's window exceeds the history capacity.
    pub fn new(capacity: usize, fold_specs: &[(usize, usize)]) -> Self {
        let history = GlobalHistory::new(capacity);
        for &(olen, _) in fold_specs {
            assert!(
                olen <= history.capacity(),
                "fold window {olen} exceeds history capacity {}",
                history.capacity()
            );
        }
        Self {
            history,
            folds: fold_specs
                .iter()
                .map(|&(olen, clen)| HistoryFold::new(olen, clen))
                .collect(),
        }
    }

    /// The underlying bit history.
    pub fn history(&self) -> &GlobalHistory {
        &self.history
    }

    /// The managed folds, in construction order.
    pub fn folds(&self) -> &[HistoryFold] {
        &self.folds
    }

    /// Value of fold `i`.
    pub fn fold(&self, i: usize) -> u64 {
        self.folds[i].value()
    }

    /// Pushes an outcome into the history and all folds.
    pub fn push(&mut self, taken: bool) {
        for fold in &mut self.folds {
            let evicted = if fold.olen == 0 {
                false
            } else {
                self.history.bit(fold.olen - 1)
            };
            fold.push(taken, evicted);
        }
        self.history.push(taken);
    }
}

/// Path history: a shift register of one low address bit per committed
/// branch (all kinds), as used by TAGE's index hash and the paper's
/// BF-TAGE ("a (limited) 16-bit path history consisting of 1 address bit
/// per branch", §V-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathHistory {
    bits: u64,
    len: u32,
}

impl PathHistory {
    /// Creates a path history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or greater than 64.
    pub fn new(len: u32) -> Self {
        assert!(
            (1..=64).contains(&len),
            "path history length must be 1..=64"
        );
        Self { bits: 0, len }
    }

    /// Pushes one branch address.
    pub fn push(&mut self, pc: u64) {
        self.bits = (self.bits << 1) | ((pc >> 2) & 1);
        if self.len < 64 {
            self.bits &= (1u64 << self.len) - 1;
        }
    }

    /// The packed register.
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// Register length in bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the register is zero (mirrors the cleared power-up state;
    /// provided for `len`/`is_empty` API symmetry).
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }
}

/// The bucketed folded-history registers used by the neural predictors'
/// index hashes (§IV-A): folds of the newest 8/16/32/64 outcomes, each
/// compressed to 16 bits. `fold_for(distance)` selects the largest bucket
/// not exceeding the distance, approximating "folded history from the
/// correlated branch up to the current branch" with O(1) state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketedFolds {
    inner: ManagedHistory,
}

/// Bucket window lengths used by [`BucketedFolds`].
pub const FOLD_BUCKETS: [usize; 4] = [8, 16, 32, 64];

impl BucketedFolds {
    /// Creates the standard bucket set.
    pub fn new() -> Self {
        let specs: Vec<(usize, usize)> = FOLD_BUCKETS
            .iter()
            .map(|&olen| (olen, olen.min(16)))
            .collect();
        Self {
            inner: ManagedHistory::new(64, &specs),
        }
    }

    /// Pushes an outcome.
    pub fn push(&mut self, taken: bool) {
        self.inner.push(taken);
    }

    /// Fold value for a correlation at `distance` branches: the largest
    /// bucket window that fits inside the distance (the 8-bit bucket for
    /// anything shorter than 8).
    pub fn fold_for(&self, distance: usize) -> u64 {
        let mut chosen = 0usize;
        for (i, &olen) in FOLD_BUCKETS.iter().enumerate() {
            if olen <= distance {
                chosen = i;
            }
        }
        self.inner.fold(chosen)
    }

    /// Fold over the largest bucket (64 bits of history).
    pub fn widest(&self) -> u64 {
        self.inner.fold(FOLD_BUCKETS.len() - 1)
    }
}

impl Default for BucketedFolds {
    fn default() -> Self {
        Self::new()
    }
}

impl Restorable for GlobalHistory {
    fn save_state(&self, w: &mut StateWriter) {
        w.u64_slice(&self.words);
        w.usize(self.head);
        w.usize(self.len);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let words = r.u64_vec()?;
        if words.len() != self.words.len() {
            return Err(CodecError::Malformed("history word count mismatch"));
        }
        let head = r.usize()?;
        let len = r.usize()?;
        if head >= self.capacity || len > self.capacity {
            return Err(CodecError::Malformed("history cursor out of range"));
        }
        self.words = words;
        self.head = head;
        self.len = len;
        Ok(())
    }
}

impl Restorable for HistoryFold {
    fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.comp);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let comp = r.u64()?;
        if self.clen < 64 && comp >= (1u64 << self.clen) {
            return Err(CodecError::Malformed("fold register out of range"));
        }
        self.comp = comp;
        Ok(())
    }
}

impl Restorable for ManagedHistory {
    fn save_state(&self, w: &mut StateWriter) {
        self.history.save_state(w);
        w.usize(self.folds.len());
        for fold in &self.folds {
            fold.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.history.load_state(r)?;
        if r.usize()? != self.folds.len() {
            return Err(CodecError::Malformed("fold count mismatch"));
        }
        for fold in &mut self.folds {
            fold.load_state(r)?;
        }
        Ok(())
    }
}

impl Restorable for PathHistory {
    fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.bits);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let bits = r.u64()?;
        if self.len < 64 && bits >= (1u64 << self.len) {
            return Err(CodecError::Malformed("path history out of range"));
        }
        self.bits = bits;
        Ok(())
    }
}

impl Restorable for BucketedFolds {
    fn save_state(&self, w: &mut StateWriter) {
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.inner.load_state(r)
    }
}

/// Mixes a 64-bit value (SplitMix64 finalizer); the hash primitive used
/// throughout the predictor index computations.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_newest_first() {
        let mut h = GlobalHistory::new(8);
        h.push(true);
        h.push(false);
        h.push(true);
        assert!(h.bit(0)); // newest
        assert!(!h.bit(1));
        assert!(h.bit(2));
        assert!(!h.bit(3)); // never pushed
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn history_wraps_capacity() {
        let mut h = GlobalHistory::new(64);
        assert_eq!(h.capacity(), 64);
        for i in 0..200 {
            h.push(i % 3 == 0);
        }
        assert_eq!(h.len(), 64);
        // Newest is i=199: 199 % 3 != 0.
        assert!(!h.bit(0));
        // age k corresponds to i = 199 - k.
        for k in 0..64 {
            assert_eq!(h.bit(k), (199 - k) % 3 == 0, "age {k}");
        }
    }

    #[test]
    fn history_capacity_rounds_up() {
        assert_eq!(GlobalHistory::new(65).capacity(), 128);
        assert_eq!(GlobalHistory::new(1).capacity(), 64);
    }

    #[test]
    fn low_bits_packs_history() {
        let mut h = GlobalHistory::new(64);
        h.push(true); // will be age 2
        h.push(false); // age 1
        h.push(true); // age 0
        assert_eq!(h.low_bits(3), 0b101);
        assert_eq!(h.low_bits(2), 0b01);
    }

    #[test]
    fn fold_matches_recompute() {
        let mut h = GlobalHistory::new(256);
        let mut fold = HistoryFold::new(37, 11);
        let mut x = 123u64;
        for _ in 0..500 {
            x = mix64(x);
            let bit = x & 1 == 1;
            let evicted = h.bit(36);
            fold.push(bit, evicted);
            h.push(bit);
            assert_eq!(fold.value(), fold.recompute(&h));
        }
    }

    #[test]
    fn fold_window_multiple_of_clen() {
        let mut h = GlobalHistory::new(64);
        let mut fold = HistoryFold::new(16, 8);
        let mut x = 7u64;
        for _ in 0..100 {
            x = mix64(x);
            let bit = x & 1 == 1;
            let evicted = h.bit(15);
            fold.push(bit, evicted);
            h.push(bit);
        }
        assert_eq!(fold.value(), fold.recompute(&h));
    }

    #[test]
    fn zero_window_fold_stays_zero() {
        let mut fold = HistoryFold::new(0, 8);
        fold.push(true, false);
        assert_eq!(fold.value(), 0);
    }

    #[test]
    fn managed_history_keeps_folds_synced() {
        let mut m = ManagedHistory::new(128, &[(5, 3), (64, 12), (128, 16)]);
        let mut x = 3u64;
        for _ in 0..300 {
            x = mix64(x);
            m.push(x & 1 == 1);
        }
        for (i, fold) in m.folds().iter().enumerate() {
            assert_eq!(m.fold(i), fold.recompute(m.history()), "fold {i}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds history capacity")]
    fn managed_history_rejects_oversized_fold() {
        ManagedHistory::new(64, &[(100, 8)]);
    }

    #[test]
    fn path_history_shifts_address_bits() {
        let mut p = PathHistory::new(4);
        p.push(0b100); // bit (pc>>2)&1 = 1
        p.push(0b000); // 0
        p.push(0b100); // 1
        assert_eq!(p.value(), 0b101);
        assert_eq!(p.len(), 4);
        // Capped at 4 bits.
        for _ in 0..10 {
            p.push(0b100);
        }
        assert_eq!(p.value(), 0b1111);
    }

    #[test]
    fn bucketed_fold_selection() {
        let folds = BucketedFolds::new();
        // Below the smallest bucket, the 8-bit bucket is still used.
        let mut f = BucketedFolds::new();
        for _ in 0..100 {
            f.push(true);
        }
        assert_eq!(f.fold_for(3), f.inner.fold(0));
        assert_eq!(f.fold_for(8), f.inner.fold(0));
        assert_eq!(f.fold_for(16), f.inner.fold(1));
        assert_eq!(f.fold_for(33), f.inner.fold(2));
        assert_eq!(f.fold_for(5000), f.inner.fold(3));
        assert_eq!(f.widest(), f.inner.fold(3));
        let _ = folds;
    }

    #[test]
    fn mix64_changes_all_inputs() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }
}
