//! Saturating counters, the workhorse state element of branch predictors.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};

/// A signed saturating counter of configurable width.
///
/// An `n`-bit signed counter covers `[-2^(n-1), 2^(n-1) - 1]`; its sign
/// provides a prediction and its magnitude confidence.
///
/// # Examples
///
/// ```
/// use bfbp_predictors::counter::SatCounter;
///
/// let mut c = SatCounter::new(3); // range [-4, 3]
/// for _ in 0..10 {
///     c.increment();
/// }
/// assert_eq!(c.value(), 3);
/// assert!(c.is_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: i32,
    min: i32,
    max: i32,
}

impl SatCounter {
    /// Creates a zero-initialized counter of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn new(bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "counter width must be 1..=31");
        Self {
            value: 0,
            min: -(1 << (bits - 1)),
            max: (1 << (bits - 1)) - 1,
        }
    }

    /// Creates a counter with an explicit initial value (clamped).
    pub fn with_value(bits: u32, value: i32) -> Self {
        let mut c = Self::new(bits);
        c.value = value.clamp(c.min, c.max);
        c
    }

    /// Current value.
    pub fn value(&self) -> i32 {
        self.value
    }

    /// Lower saturation bound.
    pub fn min(&self) -> i32 {
        self.min
    }

    /// Upper saturation bound.
    pub fn max(&self) -> i32 {
        self.max
    }

    /// Saturating increment.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    pub fn decrement(&mut self) {
        if self.value > self.min {
            self.value -= 1;
        }
    }

    /// Moves the counter toward `taken` (increment) or away (decrement).
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Prediction: `true` when the value is non-negative.
    pub fn is_taken(&self) -> bool {
        self.value >= 0
    }

    /// Whether the counter sits at either saturation bound.
    pub fn is_saturated(&self) -> bool {
        self.value == self.min || self.value == self.max
    }

    /// Whether the counter is at a "weak" state (value is 0 or −1): a
    /// newly allocated or conflicted entry.
    pub fn is_weak(&self) -> bool {
        self.value == 0 || self.value == -1
    }

    /// Resets to the weak state nearest `taken`.
    pub fn reset_weak(&mut self, taken: bool) {
        self.value = if taken { 0 } else { -1 };
    }
}

/// A table of identically sized signed saturating counter *values*,
/// stored compactly as `i8`. Suitable for widths up to 8 bits.
///
/// This avoids the per-element `min`/`max` overhead of [`SatCounter`]
/// when a predictor needs tens of thousands of counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTable {
    values: Vec<i8>,
    min: i8,
    max: i8,
    bits: u32,
}

impl CounterTable {
    /// Creates a zeroed table of `len` counters, each `bits` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `len` is 0.
    pub fn new(len: usize, bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "table counter width must be 1..=8");
        assert!(len > 0, "table must be non-empty");
        Self {
            values: vec![0; len],
            min: -(1i16 << (bits - 1)) as i8,
            max: ((1i16 << (bits - 1)) - 1) as i8,
            bits,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false` (construction requires a nonzero length).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> i32 {
        i32::from(self.values[index])
    }

    /// Trains the counter at `index` toward `taken`. Branchless: the ±1
    /// step in `i16` (an 8-bit counter at +127 would overflow `i8`) plus
    /// clamp compiles to straight-line min/max.
    pub fn train(&mut self, index: usize, taken: bool) {
        let v = &mut self.values[index];
        let delta = i16::from(taken) * 2 - 1;
        *v = (i16::from(*v) + delta).clamp(i16::from(self.min), i16::from(self.max)) as i8;
    }

    /// Adds `delta` to the counter at `index`, saturating.
    pub fn add(&mut self, index: usize, delta: i32) {
        let v = i32::from(self.values[index]) + delta;
        self.values[index] = v.clamp(i32::from(self.min), i32::from(self.max)) as i8;
    }

    /// Prediction at `index`: `true` when non-negative.
    pub fn is_taken(&self, index: usize) -> bool {
        self.values[index] >= 0
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.values.len() as u64 * u64::from(self.bits)
    }
}

impl Restorable for CounterTable {
    fn save_state(&self, w: &mut StateWriter) {
        w.i8_slice(&self.values);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        // `min`/`max`/`bits` are configuration; the length check inside
        // `i8_into` rejects a checkpoint from a differently sized table.
        r.i8_into(&mut self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_bit_counter_bounds() {
        let c = SatCounter::new(3);
        assert_eq!(c.min(), -4);
        assert_eq!(c.max(), 3);
        assert_eq!(c.value(), 0);
        assert!(c.is_taken());
        assert!(c.is_weak());
    }

    #[test]
    fn saturation_both_ends() {
        let mut c = SatCounter::new(2); // [-2, 1]
        for _ in 0..5 {
            c.increment();
        }
        assert_eq!(c.value(), 1);
        assert!(c.is_saturated());
        for _ in 0..10 {
            c.decrement();
        }
        assert_eq!(c.value(), -2);
        assert!(c.is_saturated());
        assert!(!c.is_taken());
    }

    #[test]
    fn train_moves_toward_outcome() {
        let mut c = SatCounter::new(3);
        c.train(true);
        assert_eq!(c.value(), 1);
        c.train(false);
        c.train(false);
        assert_eq!(c.value(), -1);
        assert!(!c.is_taken());
    }

    #[test]
    fn with_value_clamps() {
        assert_eq!(SatCounter::with_value(3, 100).value(), 3);
        assert_eq!(SatCounter::with_value(3, -100).value(), -4);
        assert_eq!(SatCounter::with_value(3, 2).value(), 2);
    }

    #[test]
    fn reset_weak_states() {
        let mut c = SatCounter::new(3);
        c.reset_weak(true);
        assert_eq!(c.value(), 0);
        assert!(c.is_weak() && c.is_taken());
        c.reset_weak(false);
        assert_eq!(c.value(), -1);
        assert!(c.is_weak() && !c.is_taken());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        SatCounter::new(0);
    }

    #[test]
    fn table_basics() {
        let mut t = CounterTable::new(8, 3);
        assert_eq!(t.len(), 8);
        assert_eq!(t.get(0), 0);
        assert!(t.is_taken(0));
        for _ in 0..10 {
            t.train(3, false);
        }
        assert_eq!(t.get(3), -4);
        assert!(!t.is_taken(3));
        for _ in 0..20 {
            t.train(3, true);
        }
        assert_eq!(t.get(3), 3);
    }

    #[test]
    fn table_add_saturates() {
        let mut t = CounterTable::new(2, 5); // [-16, 15]
        t.add(0, 100);
        assert_eq!(t.get(0), 15);
        t.add(0, -200);
        assert_eq!(t.get(0), -16);
        t.add(1, 7);
        assert_eq!(t.get(1), 7);
    }

    #[test]
    fn table_storage() {
        let t = CounterTable::new(1024, 3);
        assert_eq!(t.storage_bits(), 3072);
        assert_eq!(t.bits(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_table_panics() {
        CounterTable::new(0, 2);
    }

    #[test]
    fn eight_bit_table_range() {
        let mut t = CounterTable::new(1, 8);
        t.add(0, 1000);
        assert_eq!(t.get(0), 127);
        t.add(0, -1000);
        assert_eq!(t.get(0), -128);
    }
}
