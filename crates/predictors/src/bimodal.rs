//! Bimodal predictor: a PC-indexed table of 2-bit counters.
//!
//! The simplest dynamic predictor, used standalone as a baseline and as
//! the tagless base component `T0` of TAGE (Figure 6 of the paper).

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;

use crate::counter::CounterTable;

/// A bimodal predictor with `2^log_size` counters of `bits` width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bimodal {
    table: CounterTable,
    mask: u64,
    name: String,
    /// Counter value read by the most recent prediction — provenance
    /// scratch, not architectural state (never checkpointed).
    last_ctr: i32,
}

impl Bimodal {
    /// Creates a bimodal table of `2^log_size` `bits`-wide counters.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or greater than 30, or `bits` invalid
    /// per [`CounterTable::new`].
    pub fn new(log_size: u32, bits: u32) -> Self {
        assert!((1..=30).contains(&log_size), "log_size must be 1..=30");
        Self {
            table: CounterTable::new(1 << log_size, bits),
            mask: (1u64 << log_size) - 1,
            name: format!("bimodal-{}e", 1u64 << log_size),
            last_ctr: 0,
        }
    }

    /// The default CBP-style configuration: 16K entries of 2 bits (4 KiB).
    pub fn default_64kb_base() -> Self {
        Self::new(14, 2)
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Direction guess for `pc` without updating (used by TAGE as the
    /// base prediction).
    pub fn lookup(&self, pc: u64) -> bool {
        self.table.is_taken(self.index(pc))
    }

    /// Trains the entry for `pc` toward `taken`.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table.train(idx, taken);
    }

    /// Whether the entry for `pc` is weakly biased (|counter| small):
    /// TAGE's "newly allocated" heuristics consult this.
    pub fn is_weak(&self, pc: u64) -> bool {
        let v = self.table.get(self.index(pc));
        v == 0 || v == -1
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }
}

impl ConditionalPredictor for Bimodal {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.last_ctr = self.table.get(self.index(pc));
        self.last_ctr >= 0
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        self.train(pc, taken);
    }

    fn predict_batch(&mut self, pcs: &[u64], _targets: &[u64], takens: &[bool], miss: &mut [bool]) {
        // One index computation per record serves both halves of the
        // fused lookup + train (the counter is read before training).
        for i in 0..pcs.len() {
            let idx = ((pcs[i] >> 2) & self.mask) as usize;
            let ctr = self.table.get(idx);
            self.last_ctr = ctr;
            miss[i] = (ctr >= 0) != takens[i];
            self.table.train(idx, takens[i]);
        }
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        s.push("bimodal table", self.storage_bits());
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(Provenance {
            component: "bimodal",
            prediction: self.last_ctr >= 0,
            counter: Some(self.last_ctr),
            ..Default::default()
        })
    }

    fn prefers_batch(&self) -> bool {
        // The per-record work is one table read and one train; the
        // chunk segmentation + miss-buffer machinery of the batched
        // drive costs more than it saves (BENCH_5: 115M rec/s batched
        // vs 238M per-record).
        false
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for Bimodal {
    fn save_state(&self, w: &mut StateWriter) {
        self.table.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.table.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_sim::simulate::simulate;
    use bfbp_trace::record::{BranchRecord, Trace};

    #[test]
    fn learns_a_biased_branch() {
        let mut b = Bimodal::new(10, 2);
        for _ in 0..4 {
            let _ = b.predict(0x40);
            b.update(0x40, true, 0x80);
        }
        assert!(b.predict(0x40));
        for _ in 0..4 {
            b.update(0x40, false, 0x80);
        }
        assert!(!b.predict(0x40));
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut b = Bimodal::new(10, 2);
        for _ in 0..4 {
            b.update(0x40, true, 0);
            b.update(0x44, false, 0);
        }
        assert!(b.lookup(0x40));
        assert!(!b.lookup(0x44));
    }

    #[test]
    fn aliased_pcs_share_entries() {
        let mut b = Bimodal::new(4, 2); // 16 entries, index = (pc>>2)&15
        for _ in 0..4 {
            b.update(0x0, true, 0);
        }
        // 0x100 >> 2 = 0x40, & 15 = 0 → same entry as 0x0.
        assert!(b.lookup(0x100));
    }

    #[test]
    fn high_accuracy_on_biased_trace() {
        let records: Vec<BranchRecord> = (0..1000)
            .map(|i| BranchRecord::cond(0x40 + (i % 10) * 8, 0x100, true, 3))
            .collect();
        let trace = Trace::new("biased", records);
        let mut b = Bimodal::default_64kb_base();
        let result = simulate(&mut b, &trace);
        assert!(result.accuracy() > 0.98, "accuracy {}", result.accuracy());
    }

    #[test]
    fn storage_matches_configuration() {
        let b = Bimodal::new(14, 2);
        assert_eq!(b.storage_bits(), (1 << 14) * 2);
        assert_eq!(b.storage().total_bytes(), 4096);
    }

    #[test]
    fn weak_entry_detection() {
        let mut b = Bimodal::new(10, 2);
        assert!(b.is_weak(0x40));
        for _ in 0..3 {
            b.train(0x40, true);
        }
        assert!(!b.is_weak(0x40));
    }
}
