//! # bfbp-predictors
//!
//! Baseline branch predictors and shared predictor machinery for the
//! Bias-Free Branch Predictor reproduction:
//!
//! * [`counter`] — saturating counters and compact counter tables;
//! * [`history`] — global/folded/path history registers;
//! * [`bimodal`], [`gshare`] — classic table baselines;
//! * [`perceptron`] — the Jiménez–Lin global perceptron;
//! * [`piecewise`] — hashed piecewise-linear neural predictor (the
//!   paper's Figure 9 "Conventional Perceptron" baseline);
//! * [`snap`] — OH-SNAP-style scaled neural predictor (the paper's
//!   strongest neural baseline, Figure 8);
//! * [`loop_pred`] — the 64-entry skewed-associative loop-count
//!   predictor shared by ISL-TAGE and BF-Neural.
//!
//! ```
//! use bfbp_predictors::piecewise::PiecewiseLinear;
//! use bfbp_sim::simulate::simulate;
//! use bfbp_trace::synth::suite;
//!
//! let trace = suite::find("INT2").expect("suite trace").generate_len(5_000);
//! let mut predictor = PiecewiseLinear::conventional_64kb();
//! let result = simulate(&mut predictor, &trace);
//! assert!(result.accuracy() > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bimodal;
pub mod counter;
pub mod gshare;
pub mod history;
pub mod loop_pred;
pub mod perceptron;
pub mod piecewise;
pub mod registry;
pub mod snap;

pub use bimodal::Bimodal;
pub use gshare::Gshare;
pub use loop_pred::{LoopPrediction, LoopPredictor};
pub use perceptron::Perceptron;
pub use piecewise::{PiecewiseConfig, PiecewiseLinear};
pub use registry::register;
pub use snap::{ScaledNeural, ScaledNeuralConfig};
