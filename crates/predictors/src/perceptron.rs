//! The classic global perceptron predictor (Jiménez & Lin, HPCA 2001).
//!
//! Each static branch (modulo table size) owns a row of signed weights,
//! one per global-history bit plus a bias weight. The prediction is the
//! sign of the dot product of the weights with the ±1-encoded history.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::obs::{saturation_fraction, Metrics, PredictorIntrospect};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;

use crate::history::GlobalHistory;

const WEIGHT_MIN: i32 = -128;
const WEIGHT_MAX: i32 = 127;

/// A global perceptron predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perceptron {
    // rows × (h + 1) weights; weight 0 of each row is the bias.
    weights: Vec<i8>,
    rows: usize,
    history_len: usize,
    history: GlobalHistory,
    theta: i32,
    last_sum: i32,
    name: String,
}

impl Perceptron {
    /// Creates a perceptron with `rows` weight rows (rounded up to a power
    /// of two) and `history_len` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `history_len` is zero.
    pub fn new(rows: usize, history_len: usize) -> Self {
        assert!(rows > 0, "rows must be non-zero");
        assert!(history_len > 0, "history length must be non-zero");
        let rows = rows.next_power_of_two();
        Self {
            weights: vec![0; rows * (history_len + 1)],
            rows,
            history_len,
            history: GlobalHistory::new(history_len),
            // Optimal threshold from the perceptron paper.
            theta: (1.93 * history_len as f64 + 14.0) as i32,
            last_sum: 0,
            name: format!("perceptron-{history_len}h"),
        }
    }

    /// The ~64 KiB configuration: 2048 rows × 29 weights × 8 bits.
    pub fn budget_64kb() -> Self {
        Self::new(2048, 28)
    }

    fn row(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.rows - 1)
    }

    fn dot(&self, pc: u64) -> i32 {
        let base = self.row(pc) * (self.history_len + 1);
        let mut sum = i32::from(self.weights[base]);
        for i in 0..self.history_len {
            let w = i32::from(self.weights[base + 1 + i]);
            sum += if self.history.bit(i) { w } else { -w };
        }
        sum
    }

    /// The training threshold θ.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Total storage in bits (weights plus history register).
    pub fn storage_bits(&self) -> u64 {
        self.weights.len() as u64 * 8 + self.history_len as u64
    }
}

fn clamp_weight(w: &mut i8, delta: i32) {
    let v = (i32::from(*w) + delta).clamp(WEIGHT_MIN, WEIGHT_MAX);
    *w = v as i8;
}

impl ConditionalPredictor for Perceptron {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.last_sum = self.dot(pc);
        self.last_sum >= 0
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        let predicted = self.last_sum >= 0;
        if predicted != taken || self.last_sum.abs() <= self.theta {
            let base = self.row(pc) * (self.history_len + 1);
            let dir = if taken { 1 } else { -1 };
            clamp_weight(&mut self.weights[base], dir);
            for i in 0..self.history_len {
                let x = if self.history.bit(i) { 1 } else { -1 };
                clamp_weight(&mut self.weights[base + 1 + i], dir * x);
            }
        }
        self.history.push(taken);
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        s.push(
            format!(
                "perceptron weights ({} rows x {})",
                self.rows,
                self.history_len + 1
            ),
            self.weights.len() as u64 * 8,
        );
        s.push("global history register", self.history_len as u64);
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(Provenance {
            component: "perceptron",
            prediction: self.last_sum >= 0,
            margin: Some(i64::from(self.last_sum)),
            history_len: Some(self.history_len as u32),
            ..Default::default()
        })
    }

    fn introspection(&self) -> Option<&dyn PredictorIntrospect> {
        Some(self)
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for Perceptron {
    fn save_state(&self, w: &mut StateWriter) {
        // `theta` is a construction-time constant and `last_sum` is
        // per-prediction scratch overwritten by the next `predict`.
        w.i8_slice(&self.weights);
        self.history.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        r.i8_into(&mut self.weights)?;
        self.history.load_state(r)
    }
}

impl PredictorIntrospect for Perceptron {
    fn introspect(&self, metrics: &mut Metrics) {
        metrics.counter("weights.total", self.weights.len() as u64);
        metrics.gauge(
            "weights.saturation",
            saturation_fraction(&self.weights, WEIGHT_MAX),
        );
        metrics.gauge("theta", f64::from(self.theta));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_trace::rng::Xoshiro256;

    #[test]
    fn learns_single_source_correlation() {
        // b(t) = a(t): linearly separable, one history bit suffices.
        let mut p = Perceptron::new(256, 16);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut correct = 0usize;
        let mut total = 0usize;
        for i in 0..10_000 {
            let a = rng.chance(0.5);
            p.predict(0x10);
            p.update(0x10, a, 0);
            let guess = p.predict(0x20);
            p.update(0x20, a, 0);
            if i >= 5_000 {
                total += 1;
                if guess == a {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn cannot_learn_xor() {
        // c = a ^ b is not linearly separable in the history bits.
        let mut p = Perceptron::new(256, 16);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..30_000 {
            let a = rng.chance(0.5);
            let b = rng.chance(0.5);
            p.predict(0x10);
            p.update(0x10, a, 0);
            p.predict(0x20);
            p.update(0x20, b, 0);
            let guess = p.predict(0x30);
            p.update(0x30, a ^ b, 0);
            if i > 15_000 {
                total += 1;
                if guess == (a ^ b) {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc < 0.65, "xor should stay near chance, got {acc}");
    }

    #[test]
    fn learns_biased_branches_fast() {
        let mut p = Perceptron::new(64, 8);
        for _ in 0..50 {
            p.predict(0x40);
            p.update(0x40, true, 0);
        }
        assert!(p.predict(0x40));
    }

    #[test]
    fn weights_saturate() {
        let mut p = Perceptron::new(64, 4);
        // Train far beyond the weight range; must not wrap.
        for _ in 0..10_000 {
            p.predict(0x40);
            p.update(0x40, true, 0);
        }
        assert!(p.predict(0x40));
        let base = p.row(0x40) * 5;
        assert!(i32::from(p.weights[base]) <= WEIGHT_MAX);
    }

    #[test]
    fn theta_follows_formula() {
        let p = Perceptron::new(64, 28);
        assert_eq!(p.theta(), (1.93 * 28.0 + 14.0) as i32);
    }

    #[test]
    fn budget_configuration_size() {
        let p = Perceptron::budget_64kb();
        // 2048 rows × 29 weights × 8 bits ≈ 58 KiB.
        let kib = p.storage().total_kib();
        assert!((55.0..66.0).contains(&kib), "{kib} KiB");
    }
}
