//! Loop-count predictor: predicts loops with constant trip counts.
//!
//! The paper uses the L-TAGE/ISL-TAGE loop predictor design: a small
//! (64-entry, 4-way skewed-associative) table whose entries learn a
//! branch's body direction and constant iteration count, then predict the
//! exit iteration exactly. Used as a side predictor by both the baseline
//! ISL-TAGE and BF-Neural ("The LC predictor used in this work features
//! only 64 entries and is 4-way skewed associative", §IV-B2).

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::storage::StorageBreakdown;

use crate::history::mix64;

const WAYS: usize = 4;
const CONF_MAX: u8 = 7;
/// Confidence required before the loop predictor overrides.
const CONF_CONFIDENT: u8 = 3;
const ITER_MAX: u32 = (1 << 14) - 1;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LoopEntry {
    tag: u16,
    valid: bool,
    /// Direction taken during the loop body.
    dir: bool,
    /// Learned iteration count (body-direction outcomes before the exit);
    /// 0 while unknown.
    past_iter: u32,
    /// Body-direction outcomes observed since the last exit.
    current_iter: u32,
    conf: u8,
    age: u8,
}

/// A prediction produced by the loop predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Whether the entry has reached override confidence.
    pub confident: bool,
}

/// The 64-entry 4-way skewed-associative loop predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopPredictor {
    sets: usize,
    entries: Vec<LoopEntry>, // ways * sets
}

impl LoopPredictor {
    /// Creates a loop predictor with `total_entries` entries across 4
    /// skewed ways.
    ///
    /// # Panics
    ///
    /// Panics if `total_entries` is not a positive multiple of 4.
    pub fn new(total_entries: usize) -> Self {
        assert!(
            total_entries >= WAYS && total_entries.is_multiple_of(WAYS),
            "entries must be a positive multiple of 4"
        );
        let sets = (total_entries / WAYS).next_power_of_two();
        Self {
            sets,
            entries: vec![LoopEntry::default(); sets * WAYS],
        }
    }

    /// The paper's configuration: 64 entries, 4-way skewed.
    pub fn paper_64_entry() -> Self {
        Self::new(64)
    }

    fn slot(&self, pc: u64, way: usize) -> usize {
        // Skewed indexing: a different hash per way.
        let h = mix64((pc >> 2).wrapping_add((way as u64) << 48));
        way * self.sets + (h as usize & (self.sets - 1))
    }

    fn tag(pc: u64) -> u16 {
        (mix64(pc >> 2) >> 16) as u16 & 0x3FFF
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let tag = Self::tag(pc);
        (0..WAYS)
            .map(|w| self.slot(pc, w))
            .find(|&i| self.entries[i].valid && self.entries[i].tag == tag)
    }

    /// Predicts the branch at `pc`, if an entry exists and has learned a
    /// trip count.
    pub fn predict(&self, pc: u64) -> Option<LoopPrediction> {
        let idx = self.find(pc)?;
        let e = &self.entries[idx];
        if e.past_iter == 0 {
            return None;
        }
        let taken = if e.current_iter >= e.past_iter {
            !e.dir
        } else {
            e.dir
        };
        Some(LoopPrediction {
            taken,
            confident: e.conf >= CONF_CONFIDENT,
        })
    }

    /// Updates the predictor with a resolved conditional branch.
    ///
    /// `allocate` requests allocation on a miss (callers typically pass
    /// `true` only when the main predictor mispredicted, limiting
    /// pollution).
    pub fn update(&mut self, pc: u64, taken: bool, allocate: bool) {
        if let Some(idx) = self.find(pc) {
            let e = &mut self.entries[idx];
            e.age = e.age.saturating_add(1);
            if taken == e.dir {
                e.current_iter += 1;
                if e.past_iter != 0 && e.current_iter > e.past_iter {
                    // Loop ran longer than the learned trip: unlearn the
                    // trip but keep counting so the next exit records the
                    // true count.
                    e.past_iter = 0;
                    e.conf = 0;
                }
                if e.current_iter > ITER_MAX {
                    e.past_iter = 0;
                    e.conf = 0;
                    e.current_iter = 0;
                }
            } else {
                // Exit observed.
                if e.past_iter == e.current_iter && e.past_iter != 0 {
                    e.conf = (e.conf + 1).min(CONF_MAX);
                } else {
                    e.past_iter = e.current_iter;
                    e.conf = 0;
                }
                e.current_iter = 0;
            }
            return;
        }
        if !allocate {
            return;
        }
        // Allocate in the way with the lowest (conf, age); prefer invalid.
        let tag = Self::tag(pc);
        let mut victim = self.slot(pc, 0);
        let mut victim_score = u32::MAX;
        for w in 0..WAYS {
            let i = self.slot(pc, w);
            let e = &self.entries[i];
            if !e.valid {
                victim = i;
                break;
            }
            let score = (u32::from(e.conf) << 8) | u32::from(e.age);
            if score < victim_score {
                victim_score = score;
                victim = i;
            }
        }
        self.entries[victim] = LoopEntry {
            tag,
            valid: true,
            dir: taken,
            past_iter: 0,
            current_iter: 1,
            conf: 0,
            age: 0,
        };
    }

    /// Storage: per entry — 14-bit tag + 14+14-bit iteration counts +
    /// 3-bit confidence + 8-bit age + valid + direction.
    pub fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        let per_entry = 14 + 14 + 14 + 3 + 8 + 1 + 1;
        s.push(
            format!("loop predictor ({} entries)", self.entries.len()),
            self.entries.len() as u64 * per_entry,
        );
        s
    }
}

impl Restorable for LoopPredictor {
    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.entries.len());
        for e in &self.entries {
            w.u16(e.tag);
            w.bool(e.valid);
            w.bool(e.dir);
            w.u32(e.past_iter);
            w.u32(e.current_iter);
            w.u8(e.conf);
            w.u8(e.age);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        if r.usize()? != self.entries.len() {
            return Err(CodecError::Malformed("loop table size mismatch"));
        }
        for e in &mut self.entries {
            *e = LoopEntry {
                tag: r.u16()?,
                valid: r.bool()?,
                dir: r.bool()?,
                past_iter: r.u32()?,
                current_iter: r.u32()?,
                conf: r.u8()?,
                age: r.u8()?,
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `n` full loops of the given trip count through the predictor,
    /// returning the number of mispredictions among confident predictions
    /// and the number of confident predictions.
    fn run_loops(p: &mut LoopPredictor, pc: u64, trip: u32, n: usize) -> (u32, u32) {
        let mut confident_mispredicts = 0;
        let mut confident = 0;
        for _ in 0..n {
            for i in 0..trip {
                let taken = i != trip - 1; // body taken, exit not-taken
                if let Some(pred) = p.predict(pc) {
                    if pred.confident {
                        confident += 1;
                        if pred.taken != taken {
                            confident_mispredicts += 1;
                        }
                    }
                }
                p.update(pc, taken, true);
            }
        }
        (confident_mispredicts, confident)
    }

    #[test]
    fn learns_constant_trip_loop_exactly() {
        let mut p = LoopPredictor::paper_64_entry();
        let (miss, conf) = run_loops(&mut p, 0x40, 7, 50);
        assert!(conf > 200, "should become confident, got {conf}");
        assert_eq!(miss, 0, "confident predictions must be perfect");
    }

    #[test]
    fn no_prediction_before_first_exit() {
        let mut p = LoopPredictor::paper_64_entry();
        p.update(0x40, true, true);
        p.update(0x40, true, false);
        assert_eq!(p.predict(0x40), None);
    }

    #[test]
    fn changed_trip_count_resets_confidence() {
        let mut p = LoopPredictor::paper_64_entry();
        run_loops(&mut p, 0x40, 5, 20);
        // Change the trip count; first confident predictions may miss,
        // then re-learn.
        let (_, _) = run_loops(&mut p, 0x40, 9, 3);
        let (miss2, conf2) = run_loops(&mut p, 0x40, 9, 30);
        assert!(conf2 > 0);
        assert_eq!(miss2, 0);
    }

    #[test]
    fn irregular_loop_never_confident() {
        let mut p = LoopPredictor::paper_64_entry();
        // Alternating trip counts 3 and 6 — no constant trip to learn.
        for n in 0..50 {
            let trip = if n % 2 == 0 { 3 } else { 6 };
            for i in 0..trip {
                let taken = i != trip - 1;
                if let Some(pred) = p.predict(0x40) {
                    // Confident-but-wrong predictions are tolerated on
                    // irregular trips; the real assertion is the
                    // confidence cap below.
                    let _ = (pred.confident, pred.taken);
                }
                p.update(0x40, taken, true);
            }
        }
        // Confidence must not have saturated.
        let idx = p.find(0x40).unwrap();
        assert!(p.entries[idx].conf < CONF_MAX);
    }

    #[test]
    fn no_allocation_without_request() {
        let mut p = LoopPredictor::paper_64_entry();
        p.update(0x40, true, false);
        assert!(p.find(0x40).is_none());
    }

    #[test]
    fn capacity_replacement_prefers_low_confidence() {
        let mut p = LoopPredictor::new(8); // 2 sets x 4 ways
                                           // Fill with confident loops.
        for k in 0..16u64 {
            run_loops(&mut p, 0x1000 + k * 4, 4, 10);
        }
        // Table is small; at least some entries must be valid.
        let valid = p.entries.iter().filter(|e| e.valid).count();
        assert!(valid > 0);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut p = LoopPredictor::paper_64_entry();
        run_loops(&mut p, 0x40, 4, 30);
        run_loops(&mut p, 0x80, 9, 30);
        let (m1, c1) = run_loops(&mut p, 0x40, 4, 10);
        let (m2, c2) = run_loops(&mut p, 0x80, 9, 10);
        assert!(c1 > 0 && c2 > 0);
        assert_eq!(m1 + m2, 0);
    }

    #[test]
    fn storage_is_small() {
        let p = LoopPredictor::paper_64_entry();
        assert!(p.storage().total_bytes() < 600);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_entry_count_panics() {
        LoopPredictor::new(6);
    }
}
