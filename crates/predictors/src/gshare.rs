//! Gshare predictor: 2-bit counters indexed by PC XOR global history.
//!
//! A classic pattern-based baseline; unlike the perceptron family it can
//! learn non-linearly-separable correlations (e.g. XOR), at the cost of
//! exponential pattern capacity.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;

use crate::counter::CounterTable;
use crate::history::GlobalHistory;

/// A gshare predictor with `2^log_size` 2-bit counters and `hist_len`
/// bits of global history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gshare {
    table: CounterTable,
    history: GlobalHistory,
    hist_len: usize,
    mask: u64,
    name: String,
    /// Counter value read by the most recent prediction — provenance
    /// scratch, not architectural state (never checkpointed).
    last_ctr: i32,
}

impl Gshare {
    /// Creates a gshare predictor.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or greater than 30, or `hist_len` is 0
    /// or greater than 64.
    pub fn new(log_size: u32, hist_len: usize) -> Self {
        assert!((1..=30).contains(&log_size), "log_size must be 1..=30");
        assert!((1..=64).contains(&hist_len), "hist_len must be 1..=64");
        Self {
            table: CounterTable::new(1 << log_size, 2),
            history: GlobalHistory::new(hist_len.max(1)),
            hist_len,
            mask: (1u64 << log_size) - 1,
            name: format!("gshare-{hist_len}h"),
            last_ctr: 0,
        }
    }

    /// A 64 KiB-budget configuration (2^18 counters, 16-bit history).
    pub fn budget_64kb() -> Self {
        Self::new(18, 16)
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history.low_bits(self.hist_len)) & self.mask) as usize
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.table.storage_bits() + self.hist_len as u64
    }
}

impl ConditionalPredictor for Gshare {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.last_ctr = self.table.get(self.index(pc));
        self.last_ctr >= 0
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        let idx = self.index(pc);
        self.table.train(idx, taken);
        self.history.push(taken);
    }

    fn predict_batch(&mut self, pcs: &[u64], _targets: &[u64], takens: &[bool], miss: &mut [bool]) {
        // Carry the packed history register across the run instead of
        // re-packing `hist_len` bits from the ring buffer per branch.
        // `low_bits` puts age `i` at bit `i`, so committing an outcome is
        // a shift-in at bit 0.
        let hmask = u64::MAX >> (64 - self.hist_len as u32);
        let mut h = self.history.low_bits(self.hist_len);
        for i in 0..pcs.len() {
            let taken = takens[i];
            let idx = (((pcs[i] >> 2) ^ h) & self.mask) as usize;
            let ctr = self.table.get(idx);
            self.last_ctr = ctr;
            miss[i] = (ctr >= 0) != taken;
            self.table.train(idx, taken);
            self.history.push(taken);
            h = ((h << 1) | u64::from(taken)) & hmask;
        }
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        s.push("pattern history table", self.table.storage_bits());
        s.push("global history register", self.hist_len as u64);
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(Provenance {
            component: "pht",
            prediction: self.last_ctr >= 0,
            counter: Some(self.last_ctr),
            history_len: Some(self.hist_len as u32),
            ..Default::default()
        })
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for Gshare {
    fn save_state(&self, w: &mut StateWriter) {
        self.table.save_state(w);
        self.history.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.table.load_state(r)?;
        self.history.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_sim::simulate::simulate;
    use bfbp_trace::record::{BranchRecord, Trace};
    use bfbp_trace::rng::Xoshiro256;

    #[test]
    fn learns_alternating_pattern() {
        // A branch that strictly alternates is perfectly predictable from
        // one bit of history.
        let mut g = Gshare::new(12, 8);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            let p = g.predict(0x40);
            g.update(0x40, taken, 0);
            if i > 100 {
                total += 1;
                if p == taken {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.98);
    }

    #[test]
    fn learns_xor_correlation() {
        // c = a XOR b: not linearly separable, but pattern-indexable.
        let mut g = Gshare::new(14, 8);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..20_000 {
            let a = rng.chance(0.5);
            let b = rng.chance(0.5);
            g.predict(0x10);
            g.update(0x10, a, 0);
            g.predict(0x20);
            g.update(0x20, b, 0);
            let p = g.predict(0x30);
            g.update(0x30, a ^ b, 0);
            if i > 2000 {
                total += 1;
                if p == (a ^ b) {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "xor accuracy {acc}");
    }

    #[test]
    fn reasonable_on_biased_trace() {
        let records: Vec<BranchRecord> = (0..2000)
            .map(|i| BranchRecord::cond(0x40 + (i % 7) * 4, 0x100, i % 7 != 3, 3))
            .collect();
        let trace = Trace::new("b", records);
        let mut g = Gshare::budget_64kb();
        let r = simulate(&mut g, &trace);
        assert!(r.accuracy() > 0.95, "accuracy {}", r.accuracy());
    }

    #[test]
    fn storage_accounts_table_and_history() {
        let g = Gshare::new(18, 16);
        assert_eq!(g.storage_bits(), (1 << 18) * 2 + 16);
        assert_eq!(g.storage().items().len(), 2);
    }
}
