//! OH-SNAP-style scaled neural predictor (Jiménez, ICCD 2011).
//!
//! The paper's strongest neural baseline. On top of the hashed
//! piecewise-linear scheme it adds the three SNAP mechanisms:
//!
//! 1. **Per-depth scaling coefficients** — each history depth's weight is
//!    multiplied by a coefficient proportional to how predictive that
//!    depth has historically been, damping noise from uncorrelated
//!    deep history;
//! 2. **Dynamic coefficient adaptation** — the coefficients are re-fit
//!    periodically from per-depth agreement counters ("OH" = on-line);
//! 3. **Adaptive training threshold** — Seznec-style threshold training
//!    keeps the update rate matched to the scaled sum magnitudes.
//!
//! A local-history perceptron component (part of the SNAP family design)
//! is fused into the sum, covering self-history-periodic branches.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::obs::{saturation_fraction, Metrics, PredictorIntrospect};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;

use crate::history::{mix64, BucketedFolds, GlobalHistory};

const WEIGHT_MIN: i32 = -63;
const WEIGHT_MAX: i32 = 63;
/// Fixed-point unit for scaling coefficients (8.8 format).
const COEFF_ONE: i32 = 256;
const COEFF_MIN: i32 = 32;
const COEFF_MAX: i32 = 512;
/// Coefficients are re-fit every this many trained branches.
const REFIT_PERIOD: u64 = 4096;

/// Configuration for [`ScaledNeural`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledNeuralConfig {
    /// Global history length.
    pub history_len: usize,
    /// log2 of the global correlating weight table.
    pub log_table: u32,
    /// log2 of the bias weight table.
    pub log_bias: u32,
    /// Local history bits per branch.
    pub local_bits: usize,
    /// log2 of the local history table (per-branch histories).
    pub log_local_hist: u32,
    /// log2 of the local weight table.
    pub log_local_weights: u32,
}

impl ScaledNeuralConfig {
    /// The ~64 KiB configuration used for the paper's Figure 8 baseline.
    pub fn budget_64kb() -> Self {
        Self {
            history_len: 64,
            log_table: 15,
            log_bias: 11,
            local_bits: 11,
            log_local_hist: 12,
            log_local_weights: 14,
        }
    }
}

impl Default for ScaledNeuralConfig {
    fn default() -> Self {
        Self::budget_64kb()
    }
}

/// The scaled neural predictor.
#[derive(Debug, Clone)]
pub struct ScaledNeural {
    config: ScaledNeuralConfig,
    weights: Vec<i8>,
    bias: Vec<i8>,
    coeff: Vec<i32>,
    agree: Vec<u32>,
    sampled: u64,
    history: GlobalHistory,
    addresses: Vec<u64>,
    addr_head: usize,
    folds: BucketedFolds,
    local_hist: Vec<u32>,
    local_weights: Vec<i8>,
    theta: i32,
    threshold_ctr: i32,
    last_sum: i32,
    last_indices: Vec<usize>,
    last_local_indices: Vec<usize>,
    name: String,
}

impl ScaledNeural {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the history length or local bits are zero.
    pub fn new(config: ScaledNeuralConfig) -> Self {
        assert!(config.history_len > 0, "history length must be non-zero");
        assert!(config.local_bits > 0, "local bits must be non-zero");
        Self {
            config,
            weights: vec![0; 1 << config.log_table],
            bias: vec![0; 1 << config.log_bias],
            coeff: vec![COEFF_ONE; config.history_len],
            agree: vec![0; config.history_len],
            sampled: 0,
            history: GlobalHistory::new(config.history_len),
            addresses: vec![0; config.history_len],
            addr_head: 0,
            folds: BucketedFolds::new(),
            local_hist: vec![0; 1 << config.log_local_hist],
            local_weights: vec![0; 1 << config.log_local_weights],
            theta: (2.14 * (config.history_len as f64 + 1.0) + 20.58) as i32,
            threshold_ctr: 0,
            last_sum: 0,
            last_indices: vec![0; config.history_len],
            last_local_indices: vec![0; config.local_bits],
            name: format!("oh-snap-{}h", config.history_len),
        }
    }

    /// The ~64 KiB configuration.
    pub fn budget_64kb() -> Self {
        Self::new(ScaledNeuralConfig::budget_64kb())
    }

    fn address_at(&self, age: usize) -> u64 {
        let h = self.addresses.len();
        self.addresses[(self.addr_head + h - 1 - age) % h]
    }

    fn index(&self, pc: u64, age: usize) -> usize {
        let key = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (self.address_at(age) >> 2).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ (age as u64).wrapping_mul(0x1656_67B1_9E37_79F9)
            ^ (self.folds.fold_for(age + 1) << 17);
        (mix64(key) & ((1 << self.config.log_table) - 1)) as usize
    }

    fn local_hist_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.config.log_local_hist) - 1)) as usize
    }

    fn local_weight_index(&self, pc: u64, bit: usize) -> usize {
        let key = (pc >> 2).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (bit as u64) << 40;
        (mix64(key) & ((1 << self.config.log_local_weights) - 1)) as usize
    }

    fn compute(&mut self, pc: u64) -> i32 {
        let mut sum =
            i32::from(self.bias[((pc >> 2) & ((1 << self.config.log_bias) - 1)) as usize])
                * COEFF_ONE;
        for age in 0..self.config.history_len {
            let idx = self.index(pc, age);
            self.last_indices[age] = idx;
            let w = i32::from(self.weights[idx]);
            let signed = if self.history.bit(age) { w } else { -w };
            sum += signed * self.coeff[age];
        }
        let lh = self.local_hist[self.local_hist_index(pc)];
        for bit in 0..self.config.local_bits {
            let idx = self.local_weight_index(pc, bit);
            self.last_local_indices[bit] = idx;
            let w = i32::from(self.local_weights[idx]);
            sum += if (lh >> bit) & 1 == 1 { w } else { -w } * COEFF_ONE;
        }
        sum / COEFF_ONE
    }

    /// Current adaptive threshold.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Current scaling coefficient for a history depth (fixed-point 8.8).
    pub fn coefficient(&self, depth: usize) -> i32 {
        self.coeff[depth]
    }

    fn refit_coefficients(&mut self) {
        let n = self.sampled.max(1) as f64;
        for (c, &a) in self.coeff.iter_mut().zip(&self.agree) {
            // Correlation strength in [0,1]: 0.5 agreement = no signal.
            let corr = (2.0 * f64::from(a) / n - 1.0).abs();
            let fit = (COEFF_ONE as f64 * (0.125 + 1.75 * corr)) as i32;
            *c = fit.clamp(COEFF_MIN, COEFF_MAX);
        }
        self.agree.iter_mut().for_each(|a| *a = 0);
        self.sampled = 0;
    }

    fn push_history(&mut self, pc: u64, taken: bool) {
        self.history.push(taken);
        self.folds.push(taken);
        self.addresses[self.addr_head] = pc;
        self.addr_head = (self.addr_head + 1) % self.addresses.len();
        let lidx = self.local_hist_index(pc);
        let mask = (1u32 << self.config.local_bits) - 1;
        self.local_hist[lidx] = ((self.local_hist[lidx] << 1) | u32::from(taken)) & mask;
    }

    fn adapt_threshold(&mut self, mispredicted: bool, below: bool) {
        // Seznec-style threshold training.
        if mispredicted {
            self.threshold_ctr += 1;
            if self.threshold_ctr >= 32 {
                self.theta += 1;
                self.threshold_ctr = 0;
            }
        } else if below {
            self.threshold_ctr -= 1;
            if self.threshold_ctr <= -32 {
                self.theta = (self.theta - 1).max(8);
                self.threshold_ctr = 0;
            }
        }
    }
}

fn clamp_weight(w: &mut i8, delta: i32) {
    *w = (i32::from(*w) + delta).clamp(WEIGHT_MIN, WEIGHT_MAX) as i8;
}

impl ConditionalPredictor for ScaledNeural {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.last_sum = self.compute(pc);
        self.last_sum >= 0
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        let predicted = self.last_sum >= 0;
        let mispredicted = predicted != taken;
        let below = self.last_sum.abs() <= self.theta;
        // Sample per-depth agreement for coefficient adaptation.
        for age in 0..self.config.history_len {
            if self.history.bit(age) == taken {
                self.agree[age] += 1;
            }
        }
        self.sampled += 1;
        if self.sampled >= REFIT_PERIOD {
            self.refit_coefficients();
        }
        if mispredicted || below {
            let dir = if taken { 1 } else { -1 };
            let bidx = ((pc >> 2) & ((1 << self.config.log_bias) - 1)) as usize;
            clamp_weight(&mut self.bias[bidx], dir);
            for age in 0..self.config.history_len {
                let x = if self.history.bit(age) { 1 } else { -1 };
                clamp_weight(&mut self.weights[self.last_indices[age]], dir * x);
            }
            let lh = self.local_hist[self.local_hist_index(pc)];
            for bit in 0..self.config.local_bits {
                let x = if (lh >> bit) & 1 == 1 { 1 } else { -1 };
                clamp_weight(
                    &mut self.local_weights[self.last_local_indices[bit]],
                    dir * x,
                );
            }
        }
        self.adapt_threshold(mispredicted, below);
        self.push_history(pc, taken);
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        s.push(
            format!("global weights ({} entries)", self.weights.len()),
            self.weights.len() as u64 * 7,
        );
        s.push(
            format!("bias weights ({} entries)", self.bias.len()),
            self.bias.len() as u64 * 8,
        );
        s.push(
            format!("local weights ({} entries)", self.local_weights.len()),
            self.local_weights.len() as u64 * 7,
        );
        s.push(
            format!("local histories ({} entries)", self.local_hist.len()),
            (self.local_hist.len() * self.config.local_bits) as u64,
        );
        s.push(
            "coefficients + counters",
            (self.coeff.len() * 10 + self.agree.len() * 12) as u64,
        );
        s.push(
            "history + address ring",
            (self.config.history_len + self.addresses.len() * 14) as u64,
        );
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(Provenance {
            component: "snap",
            prediction: self.last_sum >= 0,
            margin: Some(i64::from(self.last_sum)),
            history_len: Some(self.config.history_len as u32),
            ..Default::default()
        })
    }

    fn introspection(&self) -> Option<&dyn PredictorIntrospect> {
        Some(self)
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for ScaledNeural {
    fn save_state(&self, w: &mut StateWriter) {
        // Everything that outlives one prediction: weight tables, the
        // coefficient-adaptation accumulators (agree/sampled), the
        // adaptive threshold pair, and all history structures.
        // `last_sum`/`last_indices`/`last_local_indices` are rewritten by
        // the next `predict` before use.
        w.i8_slice(&self.weights);
        w.i8_slice(&self.bias);
        w.i32_slice(&self.coeff);
        w.u32_slice(&self.agree);
        w.u64(self.sampled);
        self.history.save_state(w);
        w.u64_slice(&self.addresses);
        w.usize(self.addr_head);
        self.folds.save_state(w);
        w.u32_slice(&self.local_hist);
        w.i8_slice(&self.local_weights);
        w.i32(self.theta);
        w.i32(self.threshold_ctr);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        r.i8_into(&mut self.weights)?;
        r.i8_into(&mut self.bias)?;
        let coeff = r.i32_vec()?;
        let agree = r.u32_vec()?;
        if coeff.len() != self.coeff.len() || agree.len() != self.agree.len() {
            return Err(CodecError::Malformed("coefficient table size mismatch"));
        }
        self.coeff = coeff;
        self.agree = agree;
        self.sampled = r.u64()?;
        self.history.load_state(r)?;
        let addresses = r.u64_vec()?;
        if addresses.len() != self.addresses.len() {
            return Err(CodecError::Malformed("address ring size mismatch"));
        }
        let addr_head = r.usize()?;
        if addr_head >= addresses.len() {
            return Err(CodecError::Malformed("address head out of range"));
        }
        self.addresses = addresses;
        self.addr_head = addr_head;
        self.folds.load_state(r)?;
        let local_hist = r.u32_vec()?;
        if local_hist.len() != self.local_hist.len() {
            return Err(CodecError::Malformed("local history size mismatch"));
        }
        self.local_hist = local_hist;
        r.i8_into(&mut self.local_weights)?;
        self.theta = r.i32()?;
        self.threshold_ctr = r.i32()?;
        Ok(())
    }
}

impl PredictorIntrospect for ScaledNeural {
    fn introspect(&self, metrics: &mut Metrics) {
        metrics.gauge(
            "weights.saturation",
            saturation_fraction(&self.weights, WEIGHT_MAX),
        );
        metrics.gauge(
            "weights.bias.saturation",
            saturation_fraction(&self.bias, WEIGHT_MAX),
        );
        metrics.gauge(
            "weights.local.saturation",
            saturation_fraction(&self.local_weights, WEIGHT_MAX),
        );
        metrics.gauge("theta", f64::from(self.theta));
        // Distribution of the per-depth scaling coefficients in 8.8
        // fixed point: how sharply SNAP has down-weighted deep history.
        const COEFF_BOUNDS: &[f64] = &[64.0, 128.0, 192.0, 256.0, 384.0];
        for &c in &self.coeff {
            metrics.observe("coeff.value", COEFF_BOUNDS, f64::from(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_trace::rng::Xoshiro256;

    fn small() -> ScaledNeural {
        ScaledNeural::new(ScaledNeuralConfig {
            history_len: 16,
            log_table: 12,
            log_bias: 8,
            local_bits: 8,
            log_local_hist: 8,
            log_local_weights: 10,
        })
    }

    #[test]
    fn learns_direct_correlation() {
        let mut p = small();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..10_000 {
            let a = rng.chance(0.5);
            p.predict(0x100);
            p.update(0x100, a, 0);
            let guess = p.predict(0x200);
            p.update(0x200, a, 0);
            if i > 5000 {
                total += 1;
                if guess == a {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.95);
    }

    #[test]
    fn local_component_learns_periodic_branch() {
        // Period-5 pattern on a single branch: invisible to a short global
        // history polluted by noise branches, visible to local history.
        let mut p = small();
        let pattern = [true, false, true, true, false];
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..20_000usize {
            // Noise branches drown the global history.
            for k in 0..20u64 {
                let n = rng.chance(0.5);
                p.predict(0x1000 + k * 8);
                p.update(0x1000 + k * 8, n, 0);
            }
            let t = pattern[i % 5];
            let guess = p.predict(0x40);
            p.update(0x40, t, 0);
            if i > 10_000 {
                total += 1;
                if guess == t {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "local pattern accuracy {acc}");
    }

    #[test]
    fn coefficients_decay_for_uncorrelated_depths() {
        let mut p = small();
        let mut rng = Xoshiro256::seed_from_u64(77);
        // Pure-noise stream: all depths uncorrelated → all coefficients
        // should fall to the floor after a refit.
        for _ in 0..3 * REFIT_PERIOD {
            let t = rng.chance(0.5);
            p.predict(0x40);
            p.update(0x40, t, 0);
        }
        let avg: f64 = p.coeff.iter().map(|&c| f64::from(c)).sum::<f64>() / p.coeff.len() as f64;
        assert!(avg < f64::from(COEFF_ONE) / 2.0, "avg coeff {avg}");
    }

    #[test]
    fn threshold_adapts_upward_under_mispredictions() {
        let mut p = small();
        let before = p.theta();
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..20_000 {
            let t = rng.chance(0.5);
            p.predict(0x40);
            p.update(0x40, t, 0);
        }
        assert!(p.theta() >= before, "theta {} -> {}", before, p.theta());
    }

    #[test]
    fn budget_is_64kb_class() {
        let p = ScaledNeural::budget_64kb();
        let kib = p.storage().total_kib();
        assert!((48.0..70.0).contains(&kib), "{kib} KiB");
    }

    #[test]
    fn coefficient_accessor_in_range() {
        let p = small();
        for d in 0..16 {
            let c = p.coefficient(d);
            assert!((COEFF_MIN..=COEFF_MAX).contains(&c));
        }
    }
}
