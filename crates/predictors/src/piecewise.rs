//! Hashed piecewise-linear neural predictor (Jiménez, ISCA 2005 — as
//! approximated under a fixed storage budget).
//!
//! This is the "Conventional Perceptron" baseline of the paper's
//! Figure 9: for every one of the last `h` branches, a weight selected by
//! hashing (current PC, that branch's PC, its depth) contributes ±w to
//! the sum. Optionally the hash is augmented with folded global history
//! ("fhist", §IV-A), which reduces aliasing between different paths.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;

use crate::history::{mix64, BucketedFolds, GlobalHistory};

const WEIGHT_MIN: i32 = -63;
const WEIGHT_MAX: i32 = 63;

/// Configuration for [`PiecewiseLinear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PiecewiseConfig {
    /// Global history length (number of correlating weight terms).
    pub history_len: usize,
    /// log2 of the correlating weight table size.
    pub log_table: u32,
    /// log2 of the bias weight table size.
    pub log_bias: u32,
    /// Whether weight indices are augmented with folded history (§IV-A).
    pub folded_hist: bool,
}

impl PiecewiseConfig {
    /// The paper's Figure 9 baseline: history length 72 in a ~64 KiB
    /// budget, plain (non-folded) indexing.
    pub fn conventional_64kb() -> Self {
        Self {
            history_len: 72,
            log_table: 16,
            log_bias: 10,
            folded_hist: false,
        }
    }
}

impl Default for PiecewiseConfig {
    fn default() -> Self {
        Self::conventional_64kb()
    }
}

/// The hashed piecewise-linear predictor.
#[derive(Debug, Clone)]
pub struct PiecewiseLinear {
    config: PiecewiseConfig,
    weights: Vec<i8>,
    bias: Vec<i8>,
    history: GlobalHistory,
    addresses: Vec<u64>, // ring of the last h conditional-branch PCs
    addr_head: usize,
    folds: BucketedFolds,
    theta: i32,
    last_sum: i32,
    last_indices: Vec<usize>,
    name: String,
}

impl PiecewiseLinear {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the history length is zero or a table log2 exceeds 30.
    pub fn new(config: PiecewiseConfig) -> Self {
        assert!(config.history_len > 0, "history length must be non-zero");
        assert!(config.log_table <= 30 && config.log_bias <= 30);
        Self {
            config,
            weights: vec![0; 1 << config.log_table],
            bias: vec![0; 1 << config.log_bias],
            history: GlobalHistory::new(config.history_len),
            addresses: vec![0; config.history_len],
            addr_head: 0,
            folds: BucketedFolds::new(),
            theta: (2.14 * (config.history_len as f64 + 1.0) + 20.58) as i32,
            last_sum: 0,
            last_indices: vec![0; config.history_len],
            name: if config.folded_hist {
                format!("piecewise-{}h+fhist", config.history_len)
            } else {
                format!("piecewise-{}h", config.history_len)
            },
        }
    }

    /// The Figure 9 "Conventional Perceptron" baseline.
    pub fn conventional_64kb() -> Self {
        Self::new(PiecewiseConfig::conventional_64kb())
    }

    fn address_at(&self, age: usize) -> u64 {
        let h = self.addresses.len();
        self.addresses[(self.addr_head + h - 1 - age) % h]
    }

    fn index(&self, pc: u64, age: usize) -> usize {
        let mut key = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (self.address_at(age) >> 2).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ (age as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
        if self.config.folded_hist {
            key ^= self.folds.fold_for(age + 1) << 17;
        }
        (mix64(key) & ((1 << self.config.log_table) - 1)) as usize
    }

    fn compute(&mut self, pc: u64) -> i32 {
        let mut sum =
            i32::from(self.bias[((pc >> 2) & ((1 << self.config.log_bias) - 1)) as usize]);
        for age in 0..self.config.history_len {
            let idx = self.index(pc, age);
            self.last_indices[age] = idx;
            let w = i32::from(self.weights[idx]);
            sum += if self.history.bit(age) { w } else { -w };
        }
        sum
    }

    /// The training threshold θ.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Commits a conditional outcome to the history structures.
    fn push_history(&mut self, pc: u64, taken: bool) {
        self.history.push(taken);
        self.folds.push(taken);
        self.addresses[self.addr_head] = pc;
        self.addr_head = (self.addr_head + 1) % self.addresses.len();
    }
}

fn clamp_weight(w: &mut i8, delta: i32) {
    *w = (i32::from(*w) + delta).clamp(WEIGHT_MIN, WEIGHT_MAX) as i8;
}

impl ConditionalPredictor for PiecewiseLinear {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.last_sum = self.compute(pc);
        self.last_sum >= 0
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        let predicted = self.last_sum >= 0;
        if predicted != taken || self.last_sum.abs() <= self.theta {
            let dir = if taken { 1 } else { -1 };
            let bidx = ((pc >> 2) & ((1 << self.config.log_bias) - 1)) as usize;
            clamp_weight(&mut self.bias[bidx], dir);
            for age in 0..self.config.history_len {
                let x = if self.history.bit(age) { 1 } else { -1 };
                let idx = self.last_indices[age];
                clamp_weight(&mut self.weights[idx], dir * x);
            }
        }
        self.push_history(pc, taken);
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        // Weights are clamped to ±63: 7 bits each.
        s.push(
            format!("correlating weights ({} entries)", self.weights.len()),
            self.weights.len() as u64 * 7,
        );
        s.push(
            format!("bias weights ({} entries)", self.bias.len()),
            self.bias.len() as u64 * 8,
        );
        s.push(
            "history + address ring",
            (self.config.history_len + self.addresses.len() * 14) as u64,
        );
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(Provenance {
            component: "piecewise",
            prediction: self.last_sum >= 0,
            margin: Some(i64::from(self.last_sum)),
            history_len: Some(self.config.history_len as u32),
            ..Default::default()
        })
    }

    fn prefers_batch(&self) -> bool {
        // The per-record cost is dominated by the `history_len` hashed
        // weight lookups; chunk segmentation adds overhead without
        // amortising anything (BENCH_5 showed the batched drive slower).
        false
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for PiecewiseLinear {
    fn save_state(&self, w: &mut StateWriter) {
        // `theta` is fixed; `last_sum`/`last_indices` are per-prediction
        // scratch rewritten by the next `predict` before any use.
        w.i8_slice(&self.weights);
        w.i8_slice(&self.bias);
        self.history.save_state(w);
        w.u64_slice(&self.addresses);
        w.usize(self.addr_head);
        self.folds.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        r.i8_into(&mut self.weights)?;
        r.i8_into(&mut self.bias)?;
        self.history.load_state(r)?;
        let addresses = r.u64_vec()?;
        if addresses.len() != self.addresses.len() {
            return Err(CodecError::Malformed("address ring size mismatch"));
        }
        let addr_head = r.usize()?;
        if addr_head >= addresses.len() {
            return Err(CodecError::Malformed("address head out of range"));
        }
        self.addresses = addresses;
        self.addr_head = addr_head;
        self.folds.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_trace::rng::Xoshiro256;

    fn small(folded: bool) -> PiecewiseLinear {
        PiecewiseLinear::new(PiecewiseConfig {
            history_len: 16,
            log_table: 12,
            log_bias: 8,
            folded_hist: folded,
        })
    }

    #[test]
    fn learns_direct_correlation() {
        let mut p = small(false);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..10_000 {
            let a = rng.chance(0.5);
            p.predict(0x100);
            p.update(0x100, a, 0);
            let guess = p.predict(0x200);
            p.update(0x200, a, 0);
            if i > 5000 {
                total += 1;
                if guess == a {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.95);
    }

    #[test]
    fn learns_correlation_at_depth() {
        // Consumer correlates with a branch 6 deep in the history.
        let mut p = small(false);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut pending: Vec<bool> = vec![false; 8];
        let mut correct = 0;
        let mut total = 0;
        for i in 0..8000 {
            let a = rng.chance(0.5);
            p.predict(0x100);
            p.update(0x100, a, 0);
            for k in 0..5u64 {
                p.predict(0x300 + k * 8);
                p.update(0x300 + k * 8, true, 0);
            }
            let guess = p.predict(0x200);
            p.update(0x200, a, 0);
            pending.clear();
            if i > 4000 {
                total += 1;
                if guess == a {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.93);
    }

    #[test]
    fn biased_branch_is_learned_via_bias_weight() {
        let mut p = small(false);
        for _ in 0..200 {
            p.predict(0x40);
            p.update(0x40, false, 0);
        }
        assert!(!p.predict(0x40));
    }

    #[test]
    fn folded_variant_differs_and_still_learns() {
        let mut plain = small(false);
        let mut folded = small(true);
        assert_ne!(plain.name(), folded.name());
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut fc = 0;
        let mut total = 0;
        for i in 0..10_000 {
            let a = rng.chance(0.5);
            for p in [&mut plain, &mut folded] {
                p.predict(0x100);
                p.update(0x100, a, 0);
            }
            let gf = folded.predict(0x200);
            folded.update(0x200, a, 0);
            plain.predict(0x200);
            plain.update(0x200, a, 0);
            if i > 5000 {
                total += 1;
                if gf == a {
                    fc += 1;
                }
            }
        }
        assert!(fc as f64 / total as f64 > 0.9);
    }

    #[test]
    fn conventional_budget_is_64kb_class() {
        let p = PiecewiseLinear::conventional_64kb();
        let kib = p.storage().total_kib();
        assert!((50.0..68.0).contains(&kib), "{kib} KiB");
    }

    #[test]
    fn theta_positive_and_scales_with_history() {
        assert!(small(false).theta() > 0);
        assert!(PiecewiseLinear::conventional_64kb().theta() > small(false).theta());
    }
}
