//! # bfbp — Bias-Free Branch Predictor reproduction
//!
//! Facade crate re-exporting the full workspace: a from-scratch Rust
//! reproduction of Gope & Lipasti, *"Bias-Free Branch Predictor"*,
//! MICRO-47 (2014).
//!
//! * [`trace`] — branch records, trace format, statistics, synthetic
//!   CBP-style workload suite;
//! * [`sim`] — the simulation driver, MPKI metrics, storage accounting;
//! * [`predictors`] — baselines: bimodal, gshare, perceptron,
//!   piecewise-linear, OH-SNAP-style scaled neural, loop predictor;
//! * [`tage`] — TAGE / ISL-TAGE baselines;
//! * [`core`] — the paper's contribution: BST, recency stack, BF-Neural,
//!   BF-GHR, BF-TAGE.
//!
//! ## Quick start
//!
//! ```
//! use bfbp::core::bf_neural::BfNeural;
//! use bfbp::sim::simulate::simulate;
//! use bfbp::trace::synth::suite;
//!
//! let trace = suite::find("SPEC03").expect("in suite").generate_len(10_000);
//! let mut bf = BfNeural::budget_64kb();
//! let result = simulate(&mut bf, &trace);
//! println!("{result}");
//! ```

pub use bfbp_core as core;
pub use bfbp_predictors as predictors;
pub use bfbp_sim as sim;
pub use bfbp_tage as tage;
pub use bfbp_trace as trace;
