//! # bfbp — Bias-Free Branch Predictor reproduction
//!
//! Facade crate re-exporting the full workspace: a from-scratch Rust
//! reproduction of Gope & Lipasti, *"Bias-Free Branch Predictor"*,
//! MICRO-47 (2014).
//!
//! * [`trace`] — branch records, trace format, statistics, synthetic
//!   CBP-style workload suite;
//! * [`sim`] — the simulation driver, MPKI metrics, storage accounting;
//! * [`predictors`] — baselines: bimodal, gshare, perceptron,
//!   piecewise-linear, OH-SNAP-style scaled neural, loop predictor;
//! * [`tage`] — TAGE / ISL-TAGE baselines;
//! * [`core`] — the paper's contribution: BST, recency stack, BF-Neural,
//!   BF-GHR, BF-TAGE.
//!
//! ## Quick start
//!
//! Predictors are built by name through the workspace-wide registry and
//! swept over the synthetic suite by the parallel engine:
//!
//! ```
//! use bfbp::sim::engine::{self, SweepOptions};
//! use bfbp::sim::registry::PredictorSpec;
//! use bfbp::sim::runner::SuiteRunner;
//! use bfbp::trace::synth::suite;
//!
//! let registry = bfbp::default_registry();
//! let runner = SuiteRunner::from_specs(vec![suite::find("SPEC03").unwrap()], 0.01);
//! let specs = [PredictorSpec::new("bf-neural")];
//! let report = engine::sweep(&registry, &specs, &runner, &SweepOptions::default()).unwrap();
//! println!("{:.3} MPKI", report.mean_mpki("bf-neural"));
//! ```

pub use bfbp_core as core;
pub use bfbp_predictors as predictors;
pub use bfbp_sim as sim;
pub use bfbp_tage as tage;
pub use bfbp_trace as trace;

pub use bfbp_sim::{
    chrome_trace, parse_events, parse_json, postmortem_json, read_events, tune, FlightEntry,
    FlightRecorder, FrontierPoint, ParsedEvent, PredictorCaps, Provenance, SearchSpace,
    ServeClient, ServeError, ServeOptions, Server, ServerHandle, SessionStats, Simulation,
    SimulationError, StreamedTrace, TraceInput, TuneError, TuneOptions, TuneReport,
};
pub use bfbp_trace::{
    CacheStatus, FileSource, ReplaySource, SynthSource, TraceCache, TraceChunk, TraceSource,
};

use bfbp_sim::registry::PredictorRegistry;

/// The registry of every predictor in the workspace: the trivial static
/// baselines plus everything registered by [`predictors`], [`tage`], and
/// [`core`]. Build one once and share it (`&` is enough — builders are
/// `Send + Sync`) across sweep threads.
pub fn default_registry() -> PredictorRegistry {
    let mut registry = PredictorRegistry::with_builtins();
    bfbp_predictors::register(&mut registry);
    bfbp_tage::register(&mut registry);
    bfbp_core::register(&mut registry);
    registry
}
